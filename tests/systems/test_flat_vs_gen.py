"""Differential tests: flat chain paths vs retained ``*_gen`` coroutines.

Every DB-side transaction flow migrated to the flat-event calling
convention keeps its generator form alive (``submit_gen``,
``kv_write_gen``, ``run_gen``...).  These tests drive the chain path and
the generator path through identical seeded closed loops at **two**
seeds and demand byte-identical ``RunResult`` fingerprints — the proof
that flattening changed only the calling convention, never the simulated
schedule.  A divergence at either seed means a chain stage parks its
callback (or fires its completion) at a different cascade position than
the generator's resume did.

The same pattern locks in the 2PC coordinators: the participant-countdown
callback chain must land every decision at the exact simulated time the
retained generator protocol did.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import SMOKE, run_point
from repro.consensus.pbft import PbftGroup
from repro.sharding import BftCoordinator, Decision, TwoPhaseCoordinator, Vote
from repro.sim import Environment, RngRegistry
from repro.systems import (AhlSystem, EtcdSystem, HybridSystem,
                           SpannerSystem, TiDBSystem, TikvSystem)

from ..conftest import make_cluster

#: (system class, run_point name, overrides) — one entry per migrated flow.
#: tidb runs skewed multi-op so retries, latch contention, and the
#: percolator 2PC fan-out are all on the compared path; spanner and ahl
#: run 2 ops/txn so cross-shard 2PC chains fire.
CASES = {
    "etcd": (EtcdSystem, "etcd", dict()),
    "tikv": (TikvSystem, "tikv", dict()),
    "tidb": (TiDBSystem, "tidb",
             dict(theta=0.9, ops_per_txn=2, measure_txns=150)),
    "spanner": (SpannerSystem, "spanner",
                dict(num_nodes=6, ops_per_txn=2, measure_txns=150)),
    "ahl": (AhlSystem, "ahl",
            dict(num_nodes=6, ops_per_txn=2, measure_txns=100)),
    "veritas": (HybridSystem, "veritas", dict(measure_txns=150)),
}


def _fingerprint(result):
    return {
        "tps": repr(result.tps),
        "measured": result.measured,
        "latency": repr(result.stats.latency.mean),
        "aborted": result.stats.aborted,
        "abort_reasons": dict(result.stats.abort_reasons),
    }


@pytest.mark.parametrize("case", sorted(CASES))
@pytest.mark.parametrize("seed", [11, 23])
def test_flat_chain_matches_generator_path(case, seed, monkeypatch):
    cls, system, overrides = CASES[case]
    flat = _fingerprint(run_point(system, scale=SMOKE, seed=seed,
                                  **overrides))
    monkeypatch.setattr(cls, "submit", cls.submit_gen)
    gen = _fingerprint(run_point(system, scale=SMOKE, seed=seed,
                                 **overrides))
    assert flat == gen, (
        f"{case} flat chain diverged from generator path at seed {seed}")


# -- the 2PC coordinators ------------------------------------------------------


class _TimedParticipant:
    """Deterministic participant with seeded prepare/finalize delays."""

    def __init__(self, env, vote, prepare_delay, finalize_delay):
        self.env = env
        self.vote = vote
        self.prepare_delay = prepare_delay
        self.finalize_delay = finalize_delay
        self.decision = None

    def prepare(self, txn_id, payload):
        ev = self.env.event()

        def go():
            yield self.env.timeout(self.prepare_delay)
            ev.succeed(self.vote)
        self.env.process(go())
        return ev

    def finalize(self, txn_id, decision):
        ev = self.env.event()

        def go():
            yield self.env.timeout(self.finalize_delay)
            self.decision = decision
            ev.succeed(True)
        self.env.process(go())
        return ev


def _drive_2pc(runner_name: str, seed: int):
    """Run a batch of seeded 2PC instances; return (times, decisions, stats)."""
    import random
    rng = random.Random(seed)
    env = Environment()
    coordinator = TwoPhaseCoordinator(env, extra_phase_delay=0.01)
    runner = getattr(coordinator, runner_name)
    results = []
    for txn_id in range(8):
        votes = [Vote.NO if rng.random() < 0.3 else Vote.YES
                 for _ in range(3)]
        parts = [_TimedParticipant(env, v, rng.uniform(0.01, 0.2),
                                   rng.uniform(0.01, 0.1)) for v in votes]
        done = runner(txn_id, parts)
        done.callbacks.append(
            lambda ev, parts=parts: results.append(
                (env.now, ev.value, [p.decision for p in parts])))
    env.run()
    return results, (coordinator.stats.started, coordinator.stats.committed,
                     coordinator.stats.aborted)


@pytest.mark.parametrize("seed", [5, 17])
def test_2pc_countdown_chain_matches_generator(seed):
    flat = _drive_2pc("run", seed)
    gen = _drive_2pc("run_gen", seed)
    assert flat == gen, "2PC countdown chain diverged from generator protocol"


def _drive_bft2pc(runner_name: str, seed: int):
    env = Environment()
    network, nodes = make_cluster(env, 4, prefix="r")
    committee = PbftGroup(env, nodes, network, rng=RngRegistry(seed))
    coordinator = BftCoordinator(env, committee)
    runner = getattr(coordinator, runner_name)
    import random
    rng = random.Random(seed)
    results = []
    for txn_id in range(4):
        votes = [Vote.NO if rng.random() < 0.25 else Vote.YES
                 for _ in range(2)]
        parts = [_TimedParticipant(env, v, rng.uniform(0.01, 0.1),
                                   rng.uniform(0.01, 0.05)) for v in votes]
        done = runner(txn_id, parts)
        done.callbacks.append(
            lambda ev: results.append((env.now, ev.value)))
    env.run(until=60)
    return results, coordinator.consensus_rounds, (
        coordinator.stats.committed, coordinator.stats.aborted)


@pytest.mark.parametrize("seed", [5, 17])
def test_bft_2pc_countdown_chain_matches_generator(seed):
    flat = _drive_bft2pc("run", seed)
    gen = _drive_bft2pc("run_gen", seed)
    assert flat[0], "no BFT-2PC decisions landed"
    assert flat == gen, "BFT-2PC chain diverged from generator protocol"
    assert all(isinstance(d, Decision) for _t, d in flat[0])
