"""Tests for the HybridSystem composition machinery."""

import pytest

from repro.core import (Category, ConcurrencyModel, FailureModelChoice,
                        IndexKind, LedgerAbstraction, ReplicationApproach,
                        ReplicationModel, ShardingSupport, SystemProfile)
from repro.sim import Environment
from repro.systems import HYBRID_SPECS, HybridSystem, SystemConfig, build_hybrid
from repro.txn import Transaction, TxnStatus


def _profile(**overrides) -> SystemProfile:
    base = dict(
        name="custom",
        category=Category.OUT_OF_BLOCKCHAIN_DB,
        replication_model=ReplicationModel.STORAGE,
        replication_approach=ReplicationApproach.CONSENSUS,
        failure_model=FailureModelChoice.CFT,
        consensus="Raft",
        concurrency=ConcurrencyModel.CONCURRENT,
        ledger=LedgerAbstraction.APPEND_ONLY,
        index=IndexKind.LSM,
        sharding=ShardingSupport.NONE,
    )
    base.update(overrides)
    return SystemProfile(**base)


def test_all_specs_have_known_backends():
    for name, spec in HYBRID_SPECS.items():
        assert spec["backend"] in ("raft", "pbft", "tendermint", "pow",
                                   "sharedlog"), name


def test_unknown_backend_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        HybridSystem(env, _profile(), SystemConfig(num_nodes=3),
                     spec={"backend": "carrier-pigeon"})


@pytest.mark.parametrize("backend", ["raft", "pbft", "tendermint",
                                     "sharedlog"])
def test_every_backend_commits(backend):
    env = Environment()
    system = HybridSystem(env, _profile(), SystemConfig(num_nodes=4),
                          spec={"backend": backend,
                                "commit_serial_cost": 50e-6})
    system.load({"k": b"0"})
    txns = [Transaction.write("k", f"{i}".encode()) for i in range(10)]
    for txn in txns:
        system.submit(txn)
    env.run(until=60)
    assert all(t.status is TxnStatus.COMMITTED for t in txns)


def test_index_commit_deltas_measured_not_calibrated():
    """Index cost is now the engine's *measured* commit delta: plain
    indexes report zero digest work, authenticated ones report real
    hashes, and the MPT's leaf-to-root path re-hashing dominates (the
    Fig. 12 authenticated-index gap)."""
    from repro.sim.costs import DEFAULT_COSTS

    deltas = {}
    for index in (IndexKind.LSM, IndexKind.SKIP_LIST, IndexKind.BTREE,
                  IndexKind.LSM_MBT, IndexKind.BTREE_MERKLE,
                  IndexKind.LSM_MPT):
        env = Environment()
        system = HybridSystem(env, _profile(index=index),
                              SystemConfig(num_nodes=3),
                              spec={"backend": "raft"})
        system.load({f"user{i:06d}": b"x" * 100 for i in range(1000)})
        system.state.apply_write_set(
            {f"user{i:06d}": b"y" * 100 for i in range(0, 1000, 16)}, 1)
        deltas[index] = system.state.commit(1).hashes_computed
    for plain in (IndexKind.LSM, IndexKind.SKIP_LIST, IndexKind.BTREE):
        assert deltas[plain] == 0
        assert DEFAULT_COSTS.index_commit_time(deltas[plain]) == 0.0
    for authenticated in (IndexKind.LSM_MPT, IndexKind.LSM_MBT,
                          IndexKind.BTREE_MERKLE):
        assert deltas[authenticated] > 0
        assert DEFAULT_COSTS.index_commit_time(deltas[authenticated]) > 0.0
    assert deltas[IndexKind.LSM_MPT] == max(deltas.values())


def test_unknown_spec_key_rejected():
    """A typo'd spec key must raise, not silently run with defaults."""
    env = Environment()
    with pytest.raises(ValueError, match="commit_serial_costt"):
        HybridSystem(env, _profile(), SystemConfig(num_nodes=3),
                     spec={"backend": "raft", "commit_serial_costt": 1e-6})


def test_spec_index_override_swaps_engine():
    env = Environment()
    system = HybridSystem(env, _profile(index=IndexKind.LSM),
                          SystemConfig(num_nodes=3),
                          spec={"backend": "raft", "index": "lsm+mpt"})
    assert system.engine.kind is IndexKind.LSM_MPT
    assert system.engine.authenticated


def test_profile_index_drives_engine():
    env = Environment()
    system = build_hybrid(env, "veritas", SystemConfig(num_nodes=3))
    assert system.engine.kind is IndexKind.SKIP_LIST
    system = build_hybrid(env, "falcondb", SystemConfig(num_nodes=3))
    assert system.engine.kind is IndexKind.BTREE_MERKLE


def test_hybrid_ledger_records_blocks():
    env = Environment()
    system = build_hybrid(env, "veritas", SystemConfig(num_nodes=4))
    system.load({f"k{i}": b"0" for i in range(10)})
    txns = [Transaction.write(f"k{i % 10}", b"x") for i in range(130)]
    for txn in txns:
        system.submit(txn)
    env.run(until=60)
    assert system.ledger.height >= 1
    assert system.ledger.verify()


def test_spec_override_wins_over_registry():
    env = Environment()
    system = build_hybrid(env, "veritas", SystemConfig(num_nodes=4),
                          spec={"commit_serial_cost": 123e-6})
    assert system.spec["commit_serial_cost"] == 123e-6
    assert system.spec["backend"] == "sharedlog"  # registry value kept


def test_serial_concurrency_profile_executes_at_commit():
    env = Environment()
    system = HybridSystem(
        env, _profile(concurrency=ConcurrencyModel.SERIAL),
        SystemConfig(num_nodes=3), spec={"backend": "raft"})
    system.load({"acct": (100).to_bytes(8, "big")})

    def add_ten(reads):
        value = int.from_bytes(reads["acct"], "big")
        return {"acct": (value + 10).to_bytes(8, "big")}

    from repro.txn import Op, OpType
    txns = [Transaction(ops=[Op(OpType.UPDATE, "acct", b"")],
                        logic=add_ten) for _ in range(5)]
    for txn in txns:
        system.submit(txn)
    env.run(until=30)
    assert all(t.status is TxnStatus.COMMITTED for t in txns)
    value, _v = system.state.get("acct")
    assert int.from_bytes(value, "big") == 150  # serial: no lost updates
