"""Edge-case and configuration tests for the system models."""

import pytest

from repro.sim import Environment
from repro.sim.costs import DEFAULT_COSTS
from repro.systems import (EtcdSystem, FabricSystem, QuorumSystem,
                           SystemConfig, TiDBSystem)
from repro.txn import AbortReason, Op, OpType, Transaction, TxnStatus
from repro.workloads import SmallbankConfig, SmallbankWorkload


def test_system_config_derive():
    config = SystemConfig(num_nodes=7)
    derived = config.derive(num_nodes=3, seed=9)
    assert derived.num_nodes == 3 and derived.seed == 9
    assert config.num_nodes == 7  # original untouched


def test_cost_model_derive_immutable():
    costs = DEFAULT_COSTS.derive(sig_verify=1e-3)
    assert costs.sig_verify == 1e-3
    assert DEFAULT_COSTS.sig_verify != 1e-3


def test_etcd_logic_abort_surfaces():
    env = Environment()
    system = EtcdSystem(env, SystemConfig(num_nodes=3))
    system.load({"acct": (5).to_bytes(8, "big")})
    txn = Transaction(ops=[Op(OpType.UPDATE, "acct", b"")],
                      logic=lambda reads: None)
    done = system.submit(txn)
    env.run(until=5)
    assert done.triggered
    assert txn.status is TxnStatus.ABORTED
    assert txn.abort_reason is AbortReason.LOGIC


def test_quorum_multi_op_transaction_applies_atomically():
    env = Environment()
    system = QuorumSystem(env, SystemConfig(num_nodes=3))
    system.load({"a": b"0", "b": b"0"})
    txn = Transaction(ops=[Op(OpType.WRITE, "a", b"1"),
                           Op(OpType.WRITE, "b", b"2")])
    system.submit(txn)
    env.run(until=10)
    assert txn.status is TxnStatus.COMMITTED
    assert system.state.get("a")[0] == b"1"
    assert system.state.get("b")[0] == b"2"


def test_quorum_smallbank_constraint_enforced_end_to_end():
    """An overdraft must abort in-system and leave balances untouched."""
    env = Environment()
    system = QuorumSystem(env, SystemConfig(num_nodes=3))
    wl = SmallbankWorkload(SmallbankConfig(num_accounts=4, seed=1))
    records = wl.initial_records()
    system.load(records)
    src, dst = wl.checking(0), wl.checking(1)

    def drain_everything(reads):
        from repro.workloads import decode_balance, encode_balance
        balance = decode_balance(reads[src])
        if balance < 10 ** 9:       # absurd amount: must fail
            return None
        return {src: encode_balance(0)}

    txn = Transaction(ops=[Op(OpType.UPDATE, src, b""),
                           Op(OpType.UPDATE, dst, b"")],
                      logic=drain_everything)
    system.submit(txn)
    env.run(until=10)
    assert txn.status is TxnStatus.ABORTED
    assert system.state.get(src)[0] == records[src]


def test_fabric_read_only_txn_through_update_path_commits():
    """A read-only transaction going through ordering must not conflict."""
    env = Environment()
    system = FabricSystem(env, SystemConfig(num_nodes=3))
    system.load({"k": b"v"})
    txn = Transaction.read("k")
    system.submit(txn)
    env.run(until=10)
    assert txn.status is TxnStatus.COMMITTED


def test_tidb_read_only_txn_skips_2pc():
    env = Environment()
    system = TiDBSystem(env, SystemConfig(num_nodes=3))
    system.load({"k": b"v"})
    txn = Transaction.read("k")
    done = system.submit(txn)
    env.run(until=5)
    assert done.triggered and txn.status is TxnStatus.COMMITTED
    assert system.pstore.prewrites == 0  # no write path taken


def test_tidb_multi_key_commit_is_atomic():
    env = Environment()
    system = TiDBSystem(env, SystemConfig(num_nodes=3))
    system.load({"x": b"0", "y": b"0"})
    txn = Transaction(ops=[Op(OpType.UPDATE, "x", b"1"),
                           Op(OpType.UPDATE, "y", b"1")])
    system.submit(txn)
    env.run(until=10)
    assert txn.status is TxnStatus.COMMITTED
    x_val, x_ver = system.cluster.state.get("x")
    y_val, y_ver = system.cluster.state.get("y")
    assert x_val == b"1" and y_val == b"1"
    assert not system.pstore.locked_keys()  # no lock residue


def test_fabric_num_orderers_fixed():
    env = Environment()
    system = FabricSystem(env, SystemConfig(num_nodes=7))
    orderer_nodes = [n for n in system.nodes
                     if n.name.startswith("orderer")]
    assert len(orderer_nodes) == 3  # fixed while peers scale (paper 4.2)
    peer_nodes = [n for n in system.nodes if n.name.startswith("peer")]
    assert len(peer_nodes) == 7


def test_quorum_exec_cost_grows_with_record_size():
    env = Environment()
    system = QuorumSystem(env, SystemConfig(num_nodes=3))
    small = system._exec_cost(Transaction.write("k", b"x" * 10))
    large = system._exec_cost(Transaction.write("k", b"x" * 5000))
    assert large > 5 * small


def test_ibft_quorum_system_uses_3f_plus_1():
    env = Environment()
    system = QuorumSystem(env, SystemConfig(num_nodes=7), consensus="ibft")
    replica = next(iter(system.group.replicas.values()))
    assert replica.f == 2
    assert replica.quorum == 5
