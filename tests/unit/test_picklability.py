"""Pickle round-trips for everything the multiprocess sweep ships.

A spawn-context pool pickles each :class:`PointSpec` to a worker and a
:class:`PointResult` back; the worker rebuilds systems from
:class:`SystemConfig` (including ``extras`` payloads like chaos
``Scenario`` objects).  Each round-trip here pins equality after
``pickle.loads(pickle.dumps(...))`` so a new unpicklable field can't
silently break ``--sweep --jobs N``.
"""

import pickle

from repro.bench.fingerprints import CHAOS_SCENARIOS, fingerprint_specs
from repro.bench.harness import (BENCH, SMOKE, PointResult, PointSpec,
                                 Scale, _portable_result, run_spec)
from repro.sim.costs import DEFAULT_COSTS
from repro.systems.base import SystemConfig


def _roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


def test_scale_roundtrip():
    for scale in (SMOKE, BENCH, Scale("x", record_count=1, warmup_txns=2,
                                      measure_txns=3, max_sim_time=4.0)):
        assert _roundtrip(scale) == scale


def test_system_config_roundtrip():
    config = SystemConfig(num_nodes=6, seed=23,
                          costs=DEFAULT_COSTS.derive(ahl_reconfig_period=1.0),
                          extras={"index": "lsm+mpt", "wal": True})
    back = _roundtrip(config)
    assert back.num_nodes == config.num_nodes
    assert back.seed == config.seed
    assert back.extras == config.extras
    assert back.costs.ahl_reconfig_period == 1.0


def test_scenario_extras_roundtrip():
    # Chaos scenarios ride in spec params / config extras: the Scenario
    # (with its fault-step objects) must survive a worker hop with its
    # fingerprint intact.
    for name, spec in CHAOS_SCENARIOS.items():
        scenario = spec["scenario"]
        back = _roundtrip(scenario)
        assert back.fingerprint() == scenario.fingerprint(), name
        config = SystemConfig(num_nodes=5, seed=11,
                              extras={"scenario": scenario})
        assert _roundtrip(config).extras["scenario"].fingerprint() \
            == scenario.fingerprint()


def test_point_spec_roundtrip():
    spec = PointSpec(figure="fig14", key=("ahl", 6), runner="ycsb",
                     system="ahl", scale=SMOKE,
                     params=(("mode", "rmw"), ("num_nodes", 6),
                             ("seed", 11)),
                     weight=2.5)
    back = _roundtrip(spec)
    assert back == spec
    assert back.kwargs() == {"mode": "rmw", "num_nodes": 6, "seed": 11}
    # every grid + fingerprint spec must round-trip, not just a sample
    for grid_spec in fingerprint_specs():
        assert _roundtrip(grid_spec) == grid_spec


def test_point_result_roundtrip_from_live_run():
    # The real projection path: run a point, strip it portable, ship it.
    spec = PointSpec(figure="fingerprints", key=("etcd",), system="etcd",
                     scale=SMOKE, params=(("seed", 11),))
    result = run_spec(spec)
    assert isinstance(result, PointResult)
    back = _roundtrip(result)
    assert back == result
    assert back.fingerprint == result.fingerprint


def test_portable_result_carries_no_system_handle():
    # RunResult.extras["system"] is the live simulated cluster — it must
    # never cross a process boundary; _portable_result drops it.
    from repro.bench.harness import run_point
    run = run_point("etcd", scale=Scale("tiny", record_count=500,
                                        warmup_txns=5, measure_txns=40,
                                        max_sim_time=30.0), seed=11)
    assert "system" in run.extras
    spec = PointSpec(figure="t", key=("etcd",))
    portable = _portable_result(spec, run, wall_s=0.1)
    assert _roundtrip(portable) == portable
