"""Tests for the benchmark harness and the fast experiment functions.

The heavy sweep experiments are covered by the benchmark suite itself;
here we test the harness plumbing and the two experiments that need no
simulation (fig12, fig13) plus one tiny end-to-end sweep.
"""

import pytest

from repro.bench import (SMOKE, fig12_storage, fig13_ads_overhead,
                         fig15_hybrid_forecast, format_experiment,
                         format_series, format_table, run_point,
                         run_smallbank_point, shape_ratio)


def test_run_point_returns_result():
    result = run_point("etcd", scale=SMOKE, num_nodes=3)
    assert result.tps > 0
    assert result.measured == SMOKE.measure_txns
    assert result.extras["system"].name == "etcd"


def test_run_point_modes():
    query = run_point("etcd", scale=SMOKE, num_nodes=3, mode="query")
    assert query.tps > 0
    rmw = run_point("etcd", scale=SMOKE, num_nodes=3, mode="rmw")
    assert rmw.tps > 0


def test_run_point_rejects_unknown_mode():
    with pytest.raises(KeyError):
        run_point("etcd", scale=SMOKE, mode="delete-everything")


def test_run_smallbank_point():
    result = run_smallbank_point("etcd", scale=SMOKE, num_nodes=3,
                                 num_accounts=2_000)
    assert result.measured == SMOKE.measure_txns
    assert result.tps > 0


def test_scale_derive():
    tiny = SMOKE.derive(measure_txns=10)
    assert tiny.measure_txns == 10
    assert tiny.record_count == SMOKE.record_count


def test_fig12_shapes():
    result = fig12_storage()
    assert result["id"] == "fig12"
    for size in (10, 100, 1000, 5000):
        assert result["measured"]["fabric_block"][size] > \
            result["measured"]["tidb"][size]


def test_fig13_shapes_small():
    result = fig13_ads_overhead(record_sizes=(10,), records=1_000)
    assert result["measured"]["mpt"][10] > 10 * result["measured"]["mbt"][10]


def test_fig15_forecast_only():
    result = fig15_hybrid_forecast(simulate=False)
    assert result["ranking"][0] == "veritas"
    assert set(result["forecast"]) == set(result["reported"])


def test_shape_ratio():
    assert shape_ratio({"a": 100.0}, {"a": 100.0}) == pytest.approx(1.0)
    assert shape_ratio({"a": 200.0}, {"a": 100.0}) == pytest.approx(2.0)
    assert shape_ratio({}, {}) is None


def test_format_helpers_render():
    table = format_table("T", [1, 2], {"sys": {1: 10.0, 2: None}})
    assert "sys" in table and "—" in table
    series = format_series("S", {"x": 1.0})
    assert "x" in series
    text = format_experiment({"id": "figX", "measured": {"a": {"b": 1.0}},
                              "note": "hi"})
    assert "figX" in text and "note: hi" in text
