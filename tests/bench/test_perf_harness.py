"""Tests for the perf-regression harness and its CLI entry point."""

import json

from repro.bench.__main__ import main
from repro.bench.perf import (bench_kernel, bench_mpt, bench_zipf,
                              format_perf, run_perf, write_trajectory)


def test_bench_kernel_reports_rate():
    result = bench_kernel(events=2_000)
    assert result["events"] >= 2_000
    assert result["events_per_s"] > 0


def test_bench_mpt_equivalence_guard():
    result = bench_mpt(writes=500, block=50)
    assert result["per_write"]["hashes"] > result["batched"]["hashes"]
    assert len(result["root"]) == 64  # hex sha256


def test_bench_zipf_checksum_deterministic():
    a = bench_zipf(draws=5_000, n=1_000, theta=0.9)
    b = bench_zipf(draws=5_000, n=1_000, theta=0.9)
    assert a["checksum"] == b["checksum"]  # fixed rng seed => same stream


def test_trajectory_file_roundtrip(tmp_path):
    report = {"scale": "smoke", "total_wall_s": 1.0,
              "benchmarks": {"kernel": {"name": "kernel", "wall_s": 1.0,
                                        "events_per_s": 1}}}
    path = write_trajectory(report, out_dir=str(tmp_path))
    assert path.name.startswith("BENCH_") and path.suffix == ".json"
    data = json.loads(path.read_text())
    assert data["date"] in path.name
    assert data["benchmarks"]["kernel"]["events_per_s"] == 1
    assert format_perf(data).startswith("perf trajectory")


def test_cli_perf_smoke_writes_trajectory(tmp_path, capsys):
    code = main(["--perf", "--scale", "smoke",
                 "--perf-out", str(tmp_path), "--budget", "300"])
    assert code == 0
    out = capsys.readouterr().out
    assert "perf trajectory" in out
    files = list(tmp_path.glob("BENCH_*.json"))
    assert len(files) == 1
    data = json.loads(files[0].read_text())
    assert set(data["benchmarks"]) == {"kernel", "mpt", "mbt", "zipf", "fabric",
                                       "driver", "scale", "db-etcd", "db-tidb",
                                       "storage-mpt", "storage-lsm",
                                       "isolation", "openloop", "chaos",
                                       "shards"}


def test_cli_perf_budget_violation_fails(tmp_path, capsys):
    code = main(["--perf", "--scale", "smoke",
                 "--perf-out", str(tmp_path), "--budget", "0.000001"])
    assert code == 1
    assert "PERF BUDGET EXCEEDED" in capsys.readouterr().err
