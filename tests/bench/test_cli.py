"""Tests for the ``python -m repro.bench`` command-line entry point."""

import pytest

from repro.bench.__main__ import EXPERIMENTS, main


def test_list_exits_cleanly(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for artifact in ("fig4", "tab5", "fig15"):
        assert artifact in out


def test_unknown_artifact_rejected(capsys):
    assert main(["fig99"]) == 2
    assert "unknown artifacts" in capsys.readouterr().err


def test_no_args_prints_help(capsys):
    assert main([]) == 2
    assert "usage" in capsys.readouterr().out.lower()


def test_registry_covers_every_paper_artifact():
    expected = {f"fig{i}" for i in range(4, 16)} | {"tab4", "tab5"} \
        | {"isolation_ablation", "openloop_knee", "fig14_scaling"}
    assert set(EXPERIMENTS) == expected


def test_run_fast_artifact(capsys):
    assert main(["fig12"]) == 0
    out = capsys.readouterr().out
    assert "fig12" in out and "fabric_block" in out
