"""Tests for the Merkle Patricia Trie."""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adt.mpt import EMPTY_ROOT, MerklePatriciaTrie, NodeStore, verify_proof


def key_of(i: int) -> bytes:
    return hashlib.md5(f"key{i}".encode()).digest()


def test_empty_get():
    trie = MerklePatriciaTrie()
    assert trie.get(b"\x01\x02") is None
    assert trie.root == EMPTY_ROOT


def test_put_get_single():
    trie = MerklePatriciaTrie()
    trie.put(b"\xab\xcd", b"value")
    assert trie.get(b"\xab\xcd") == b"value"
    assert trie.get(b"\xab\xce") is None


def test_empty_key_rejected():
    with pytest.raises(ValueError):
        MerklePatriciaTrie().put(b"", b"v")


def test_overwrite_updates_value_and_root():
    trie = MerklePatriciaTrie()
    r1 = trie.put(b"\x01", b"a")
    r2 = trie.put(b"\x01", b"b")
    assert trie.get(b"\x01") == b"b"
    assert r1 != r2


def test_shared_prefix_keys():
    trie = MerklePatriciaTrie()
    trie.put(b"\x12\x34\x56", b"one")
    trie.put(b"\x12\x34\x78", b"two")
    trie.put(b"\x12\x99\x00", b"three")
    assert trie.get(b"\x12\x34\x56") == b"one"
    assert trie.get(b"\x12\x34\x78") == b"two"
    assert trie.get(b"\x12\x99\x00") == b"three"


def test_key_that_is_prefix_of_another():
    trie = MerklePatriciaTrie()
    trie.put(b"\x12", b"short")
    trie.put(b"\x12\x34", b"long")
    assert trie.get(b"\x12") == b"short"
    assert trie.get(b"\x12\x34") == b"long"


def test_root_is_order_independent():
    items = [(key_of(i), f"v{i}".encode()) for i in range(200)]
    t1 = MerklePatriciaTrie()
    for k, v in items:
        t1.put(k, v)
    t2 = MerklePatriciaTrie()
    for k, v in reversed(items):
        t2.put(k, v)
    assert t1.root == t2.root


def test_root_depends_on_content():
    t1 = MerklePatriciaTrie()
    t1.put(b"\x01", b"a")
    t2 = MerklePatriciaTrie()
    t2.put(b"\x01", b"b")
    assert t1.root != t2.root


def test_proof_verifies_and_rejects():
    trie = MerklePatriciaTrie()
    for i in range(100):
        trie.put(key_of(i), f"v{i}".encode())
    proof = trie.prove(key_of(42))
    assert verify_proof(trie.root, key_of(42), b"v42", proof)
    assert not verify_proof(trie.root, key_of(42), b"WRONG", proof)
    assert not verify_proof(trie.root, key_of(43), b"v42", proof)
    # proof against a stale root fails
    old_root = trie.root
    trie.put(key_of(42), b"new")
    fresh_proof = trie.prove(key_of(42))
    assert verify_proof(trie.root, key_of(42), b"new", fresh_proof)
    assert not verify_proof(old_root, key_of(42), b"new", fresh_proof)


def test_empty_proof_rejected():
    assert not verify_proof(EMPTY_ROOT, b"\x01", b"v", [])


def test_stale_versions_accumulate_in_store():
    """Content-addressed storage retains rewritten paths (Fig. 13 driver)."""
    trie = MerklePatriciaTrie()
    for i in range(50):
        trie.put(key_of(i), b"x" * 10)
    nodes_after_insert = len(trie.store)
    for i in range(50):
        trie.put(key_of(i), b"y" * 10)
    assert len(trie.store) > nodes_after_insert


def test_store_bytes_include_hash_keys():
    store = NodeStore()
    digest = store.put(b"blob")
    assert store.get(digest) == b"blob"
    assert store.total_bytes() == 32 + 4


def test_historical_root_remains_readable():
    """Old roots stay queryable — the blockchain history property."""
    trie = MerklePatriciaTrie()
    trie.put(b"\x01", b"old")
    old_root = trie.root
    trie.put(b"\x01", b"new")
    historical = MerklePatriciaTrie(store=trie.store, root=old_root)
    assert historical.get(b"\x01") == b"old"
    assert trie.get(b"\x01") == b"new"


def test_depth_grows_with_population():
    trie = MerklePatriciaTrie()
    trie.put(key_of(0), b"v")
    shallow = trie.depth(key_of(0))
    for i in range(1, 500):
        trie.put(key_of(i), b"v")
    assert trie.depth(key_of(0)) >= shallow


@settings(max_examples=30, deadline=None)
@given(st.dictionaries(st.binary(min_size=1, max_size=8),
                       st.binary(min_size=0, max_size=32),
                       min_size=1, max_size=40))
def test_mpt_matches_dict_model(model):
    trie = MerklePatriciaTrie()
    for k, v in model.items():
        trie.put(k, v)
    for k, v in model.items():
        assert trie.get(k) == v


@settings(max_examples=20, deadline=None)
@given(st.lists(st.tuples(st.binary(min_size=1, max_size=6),
                          st.binary(min_size=0, max_size=8)),
                min_size=1, max_size=30))
def test_mpt_root_reflects_final_state_only(items):
    """Two tries that end at the same map have the same root, regardless
    of intermediate overwrites."""
    final = {}
    trie1 = MerklePatriciaTrie()
    for k, v in items:
        trie1.put(k, v)
        final[k] = v
    trie2 = MerklePatriciaTrie()
    for k, v in sorted(final.items()):
        trie2.put(k, v)
    assert trie1.root == trie2.root
