"""Tests for the binary Merkle tree and the Merkle Bucket Tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adt import MerkleBucketTree, MerkleTree
from repro.crypto.hashing import NULL_HASH


# -- Merkle tree -------------------------------------------------------------

def test_merkle_empty_root_is_null():
    assert MerkleTree([]).root == NULL_HASH


def test_merkle_single_leaf():
    tree = MerkleTree([b"only"])
    assert tree.prove(0).verify(b"only", tree.root)


def test_merkle_all_proofs_verify():
    leaves = [f"leaf{i}".encode() for i in range(17)]  # odd, non-power-of-2
    tree = MerkleTree(leaves)
    for i, leaf in enumerate(leaves):
        assert tree.prove(i).verify(leaf, tree.root), i


def test_merkle_proof_rejects_wrong_leaf():
    tree = MerkleTree([b"a", b"b", b"c"])
    assert not tree.prove(1).verify(b"tampered", tree.root)


def test_merkle_proof_rejects_wrong_root():
    tree = MerkleTree([b"a", b"b", b"c"])
    other = MerkleTree([b"a", b"b", b"d"])
    assert not tree.prove(0).verify(b"a", other.root)


def test_merkle_proof_index_bounds():
    tree = MerkleTree([b"a"])
    with pytest.raises(IndexError):
        tree.prove(5)


def test_merkle_root_is_content_sensitive():
    assert MerkleTree([b"a", b"b"]).root != MerkleTree([b"b", b"a"]).root


@settings(max_examples=25, deadline=None)
@given(st.lists(st.binary(min_size=0, max_size=16), min_size=1, max_size=33),
       st.data())
def test_merkle_proofs_verify_property(leaves, data):
    tree = MerkleTree(leaves)
    idx = data.draw(st.integers(min_value=0, max_value=len(leaves) - 1))
    assert tree.prove(idx).verify(leaves[idx], tree.root)


# -- Merkle Bucket Tree --------------------------------------------------------

def test_mbt_parameters_validated():
    with pytest.raises(ValueError):
        MerkleBucketTree(num_buckets=0)
    with pytest.raises(ValueError):
        MerkleBucketTree(fanout=1)


def test_mbt_depth_matches_paper_formula():
    """1000 buckets, fan-out 4 -> depth ceil(log4 1000) = 5."""
    assert MerkleBucketTree(num_buckets=1000, fanout=4).depth == 5


def test_mbt_put_get_commit():
    mbt = MerkleBucketTree(num_buckets=16, fanout=4)
    mbt.put(b"k1", b"v1")
    root1 = mbt.commit()
    assert mbt.get(b"k1") == b"v1"
    mbt.put(b"k1", b"v2")
    root2 = mbt.commit()
    assert root1 != root2


def test_mbt_type_check():
    mbt = MerkleBucketTree(num_buckets=4)
    with pytest.raises(TypeError):
        mbt.put("str", b"v")


def test_mbt_delete():
    mbt = MerkleBucketTree(num_buckets=8)
    mbt.put(b"k", b"v")
    root_with = mbt.commit()
    mbt.delete(b"k")
    root_without = mbt.commit()
    assert mbt.get(b"k") is None
    assert root_with != root_without
    assert len(mbt) == 0


def test_mbt_root_independent_of_insert_order():
    items = [(f"k{i}".encode(), f"v{i}".encode()) for i in range(100)]
    a = MerkleBucketTree(num_buckets=16)
    for k, v in items:
        a.put(k, v)
    a.commit()
    b = MerkleBucketTree(num_buckets=16)
    for k, v in reversed(items):
        b.put(k, v)
    b.commit()
    assert a.root == b.root


def test_mbt_proof_verifies_and_rejects():
    mbt = MerkleBucketTree(num_buckets=32, fanout=4)
    for i in range(200):
        mbt.put(f"key{i}".encode(), f"val{i}".encode())
    root = mbt.commit()
    proof = mbt.prove(b"key7")
    assert mbt.verify_proof(b"key7", b"val7", proof, root)
    assert not mbt.verify_proof(b"key7", b"forged", proof, root)
    assert not mbt.verify_proof(b"key7", b"val7", proof, b"\x00" * 32)


def test_mbt_fixed_scale_overhead_is_small_constant():
    """The Fig. 13 contrast: MBT overhead stays ~tens of bytes/record."""
    mbt = MerkleBucketTree(num_buckets=1000, fanout=4)
    import hashlib
    for i in range(5000):
        mbt.put(hashlib.md5(f"r{i}".encode()).digest(), b"x" * 10)
    mbt.commit()
    overhead = mbt.overhead_per_record(10)
    assert 10 < overhead < 120


def test_mbt_incremental_commit_equals_batch_commit():
    a = MerkleBucketTree(num_buckets=16)
    b = MerkleBucketTree(num_buckets=16)
    for i in range(50):
        a.put(f"k{i}".encode(), b"v")
        a.commit()  # commit after each write
        b.put(f"k{i}".encode(), b"v")
    b.commit()      # one commit at the end
    assert a.root == b.root


def test_mbt_single_bucket_degenerate():
    mbt = MerkleBucketTree(num_buckets=1, fanout=4)
    mbt.put(b"a", b"1")
    root = mbt.commit()
    assert root != NULL_HASH
    assert mbt.depth == 0
