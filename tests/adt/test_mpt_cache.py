"""Tests for the shared LRU decoded-node cache (was clear-on-overflow)."""

from __future__ import annotations

from repro.adt.mpt import DecodedNodeCache, MerklePatriciaTrie, NodeStore


def test_cache_shared_across_tries_on_one_store():
    store = NodeStore()
    writer = MerklePatriciaTrie(store)
    for i in range(50):
        writer.put(b"user%04d" % i, b"v%d" % i)
    root = writer.root
    warm = len(store.cache)
    assert warm > 0
    # a historical trie over the same store reuses the decoded nodes the
    # writer cached — lookups add no new entries for shared paths
    reader = MerklePatriciaTrie(store, root=root)
    assert reader._cache is store.cache
    for i in range(50):
        assert reader.get(b"user%04d" % i) == b"v%d" % i
    assert len(store.cache) == warm


def test_historical_roots_stay_readable_after_updates():
    store = NodeStore()
    trie = MerklePatriciaTrie(store)
    trie.put(b"acct1", b"balance=100")
    old_root = trie.root
    trie.put(b"acct1", b"balance=50")
    historical = MerklePatriciaTrie(store, root=old_root)
    assert historical.get(b"acct1") == b"balance=100"
    assert trie.get(b"acct1") == b"balance=50"


def test_lru_evicts_cold_entries_not_whole_cache():
    cache = DecodedNodeCache(capacity=4)
    for i in range(4):
        cache.put(b"d%d" % i, ("node", i))
    # touch d0 so it becomes most recent (cache is at capacity, so the
    # recency refresh is engaged)
    assert cache.get(b"d0") == ("node", 0)
    cache.put(b"d4", ("node", 4))        # evicts d1, the LRU entry
    assert cache.evictions == 1
    assert cache.get(b"d1") is None
    assert cache.get(b"d0") == ("node", 0)
    assert cache.get(b"d4") == ("node", 4)
    assert len(cache) == 4


def test_overflow_keeps_hot_working_set():
    """Unlike clear-on-overflow, hot entries survive a stream of cold
    inserts that exceeds capacity."""
    cache = DecodedNodeCache(capacity=8)
    hot = [b"hot%d" % i for i in range(4)]
    for key in hot:
        cache.put(key, ("hot", key))
    for i in range(100):
        for key in hot:                 # keep the hot set recent
            assert cache.get(key) is not None
        cache.put(b"cold%d" % i, ("cold", i))
    for key in hot:
        assert cache.get(key) == ("hot", key)
    assert len(cache) == 8


def test_trie_roots_identical_under_tiny_cache():
    """Cache behaviour must never leak into digests: a trie running on a
    1-entry cache produces byte-identical roots and hash counts."""
    keys = [b"user%06d" % i for i in range(200)]
    big = MerklePatriciaTrie()
    small = MerklePatriciaTrie(NodeStore(cache_capacity=1))
    for i, key in enumerate(keys):
        r1 = big.put(key, b"v%d" % i)
        r2 = small.put(key, b"v%d" % i)
        assert r1 == r2
    assert big.hashes_computed == small.hashes_computed
    # batched path too
    b2 = MerklePatriciaTrie(NodeStore(cache_capacity=1))
    for i, key in enumerate(keys):
        b2.stage(key, b"v%d" % i)
    assert b2.commit() == big.root


def test_batched_commit_shares_cache_with_per_write():
    store = NodeStore()
    trie = MerklePatriciaTrie(store)
    for i in range(20):
        trie.stage(b"user%04d" % i, b"v%d" % i)
    trie.commit()
    assert store.cache.entries   # commit populated the shared cache
    reader = MerklePatriciaTrie(store, root=trie.root)
    assert reader.get(b"user0007") == b"v7"
