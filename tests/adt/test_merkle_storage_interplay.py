"""Cross-module tests: authenticated structures over storage engines.

These exercise the combination the hybrid systems use: state in a storage
engine with digests in an ADS, checking that the two stay consistent
through updates — the "blockchain state organization" of Table 2 rows
like Quorum (LSM + MPT) and FalconDB (B-tree + Merkle tree).
"""

import hashlib

from repro.adt import MerkleBucketTree, MerklePatriciaTrie
from repro.storage import BPlusTree, LSMTree


def _key(i: int) -> bytes:
    return hashlib.md5(f"k{i}".encode()).digest()


def test_lsm_plus_mpt_stay_consistent():
    """Quorum-style pairing: values in the LSM, digests in the MPT."""
    lsm = LSMTree(memtable_limit=32)
    mpt = MerklePatriciaTrie()
    for i in range(300):
        value = f"v{i}".encode()
        lsm.put(_key(i), value)
        mpt.put(_key(i), hashlib.sha256(value).digest())
    # overwrite a slice
    for i in range(100, 150):
        value = f"updated{i}".encode()
        lsm.put(_key(i), value)
        mpt.put(_key(i), hashlib.sha256(value).digest())
    for i in range(300):
        value = lsm.get(_key(i))
        assert value is not None
        assert mpt.get(_key(i)) == hashlib.sha256(value).digest()


def test_mpt_root_detects_storage_tampering():
    """A value silently modified in the engine no longer matches the
    digest the MPT authenticated — the integrity property hybrids buy."""
    lsm = LSMTree(memtable_limit=32)
    mpt = MerklePatriciaTrie()
    for i in range(50):
        value = f"v{i}".encode()
        lsm.put(_key(i), value)
        mpt.put(_key(i), hashlib.sha256(value).digest())
    # attacker rewrites the engine directly, bypassing the ADS
    lsm.put(_key(7), b"tampered")
    stored = lsm.get(_key(7))
    assert mpt.get(_key(7)) != hashlib.sha256(stored).digest()


def test_btree_plus_mbt_falcondb_style():
    """FalconDB-style pairing: MySQL (B+ tree) + fixed-scale Merkle."""
    btree = BPlusTree(order=16)
    mbt = MerkleBucketTree(num_buckets=64, fanout=4)
    for i in range(200):
        value = f"row{i}".encode()
        btree.put(_key(i), value)
        mbt.put(_key(i), value)
    root_before = mbt.commit()
    # a legitimate update changes the root
    btree.put(_key(3), b"new-row")
    mbt.put(_key(3), b"new-row")
    root_after = mbt.commit()
    assert root_after != root_before
    # the proof for an untouched record still verifies under the new root
    proof = mbt.prove(_key(100))
    assert mbt.verify_proof(_key(100), b"row100", proof, root_after)


def test_historical_root_survives_engine_compaction():
    """Ledger semantics: an old MPT root stays verifiable even after the
    storage engine has compacted away old value versions."""
    lsm = LSMTree(memtable_limit=8, max_l0_tables=1)
    mpt = MerklePatriciaTrie()
    key = _key(1)
    mpt.put(key, b"old")
    old_root = mpt.root
    for i in range(100):  # churn forces compactions
        lsm.put(_key(i), b"x")
    mpt.put(key, b"new")
    historical = MerklePatriciaTrie(store=mpt.store, root=old_root)
    assert historical.get(key) == b"old"
    assert mpt.get(key) == b"new"
