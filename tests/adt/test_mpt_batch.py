"""Batched MPT commits: root equivalence with the per-write path."""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adt.mpt import EMPTY_ROOT, MerklePatriciaTrie, verify_proof


def key_of(i: int) -> bytes:
    return hashlib.md5(f"key{i}".encode()).digest()


def test_stage_commit_single_key():
    trie = MerklePatriciaTrie()
    trie.stage(b"\xab\xcd", b"value")
    assert trie.staged == 1
    root = trie.commit()
    assert trie.staged == 0
    assert root == trie.root != EMPTY_ROOT
    assert trie.get(b"\xab\xcd") == b"value"


def test_empty_commit_is_noop():
    trie = MerklePatriciaTrie()
    assert trie.commit() == EMPTY_ROOT
    trie.put(b"\x01", b"a")
    root = trie.root
    assert trie.commit() == root


def test_stage_rejects_empty_key():
    with pytest.raises(ValueError):
        MerklePatriciaTrie().stage(b"", b"v")


def test_staged_value_visible_before_commit():
    trie = MerklePatriciaTrie()
    trie.put(b"\x01", b"committed")
    trie.stage(b"\x01", b"staged")
    trie.stage(b"\x02", b"fresh")
    assert trie.get(b"\x01") == b"staged"
    assert trie.get(b"\x02") == b"fresh"
    assert trie.get(b"\x03") is None


def test_last_staged_write_wins():
    trie = MerklePatriciaTrie()
    trie.stage(b"\x01", b"first")
    trie.stage(b"\x01", b"second")
    trie.commit()
    assert trie.get(b"\x01") == b"second"

    reference = MerklePatriciaTrie()
    reference.put(b"\x01", b"second")
    assert trie.root == reference.root


def test_batched_root_matches_per_write_sequence():
    items = [(key_of(i), f"v{i}".encode()) for i in range(300)]
    per_write = MerklePatriciaTrie()
    for k, v in items:
        per_write.put(k, v)
    batched = MerklePatriciaTrie()
    for k, v in items:
        batched.stage(k, v)
    batched.commit()
    assert per_write.root == batched.root


def test_multi_block_commits_match_per_write():
    per_write = MerklePatriciaTrie()
    batched = MerklePatriciaTrie()
    for block in range(10):
        for i in range(50):
            key = key_of(block * 50 + i)
            value = b"blk%d-%d" % (block, i)
            per_write.put(key, value)
            batched.stage(key, value)
        assert batched.commit() == per_write.root


def test_batched_commit_hashes_each_path_once():
    """A block of prefix-sharing writes must hash far fewer nodes than
    the per-write path (the whole point of batching)."""
    keys = [b"user%012d" % i for i in range(500)]
    per_write = MerklePatriciaTrie()
    for k in keys:
        per_write.put(k, b"v")
    batched = MerklePatriciaTrie()
    for k in keys:
        batched.stage(k, b"v")
    batched.commit()
    assert batched.root == per_write.root
    assert batched.hashes_computed < per_write.hashes_computed / 2


def test_batched_store_skips_intermediate_versions():
    keys = [key_of(i) for i in range(100)]
    per_write = MerklePatriciaTrie()
    for k in keys:
        per_write.put(k, b"v")
    batched = MerklePatriciaTrie()
    for k in keys:
        batched.stage(k, b"v")
    batched.commit()
    assert len(batched.store) < len(per_write.store)


def test_proofs_verify_after_batched_commit():
    trie = MerklePatriciaTrie()
    for i in range(100):
        trie.stage(key_of(i), f"v{i}".encode())
    trie.commit()
    proof = trie.prove(key_of(42))
    assert verify_proof(trie.root, key_of(42), b"v42", proof)


def test_put_supersedes_older_staged_write():
    """A put() after a stage() of the same key must win (it is newer)."""
    trie = MerklePatriciaTrie()
    trie.stage(b"\x01", b"staged-old")
    trie.put(b"\x01", b"put-new")
    assert trie.get(b"\x01") == b"put-new"
    trie.commit()  # must NOT resurrect the stale staged value
    assert trie.get(b"\x01") == b"put-new"
    reference = MerklePatriciaTrie()
    reference.put(b"\x01", b"put-new")
    assert trie.root == reference.root


def test_mixed_put_and_stage_interleave():
    """put() between commits must compose with staged batches."""
    reference = MerklePatriciaTrie()
    mixed = MerklePatriciaTrie()
    reference.put(b"\x01", b"a")
    mixed.put(b"\x01", b"a")
    mixed.stage(b"\x02", b"b")
    mixed.commit()
    reference.put(b"\x02", b"b")
    mixed.put(b"\x03", b"c")
    reference.put(b"\x03", b"c")
    assert mixed.root == reference.root


def test_historical_roots_remain_readable_after_batched_commits():
    trie = MerklePatriciaTrie()
    trie.stage(b"\x01", b"old")
    old_root = trie.commit()
    trie.stage(b"\x01", b"new")
    trie.commit()
    historical = MerklePatriciaTrie(store=trie.store, root=old_root)
    assert historical.get(b"\x01") == b"old"
    assert trie.get(b"\x01") == b"new"


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.binary(min_size=1, max_size=6),
                          st.binary(min_size=0, max_size=12)),
                min_size=1, max_size=40),
       st.integers(1, 7))
def test_batched_equivalence_randomized(items, block_size):
    """Randomized insert/update sequences, arbitrary block boundaries:
    the batched root must always equal the per-write root."""
    per_write = MerklePatriciaTrie()
    batched = MerklePatriciaTrie()
    for i, (k, v) in enumerate(items):
        per_write.put(k, v)
        batched.stage(k, v)
        if (i + 1) % block_size == 0:
            batched.commit()
    batched.commit()
    assert per_write.root == batched.root
    for k, v in dict(items).items():
        assert batched.get(k) == v


@settings(max_examples=20, deadline=None)
@given(st.dictionaries(st.binary(min_size=1, max_size=8),
                       st.binary(min_size=0, max_size=16),
                       min_size=1, max_size=30))
def test_node_cache_transparent(model):
    """Reads through the decoded-node cache equal cold-store reads."""
    trie = MerklePatriciaTrie()
    for k, v in model.items():
        trie.put(k, v)
    cold = MerklePatriciaTrie(store=trie.store, root=trie.root)
    for k, v in model.items():
        assert trie.get(k) == v
        assert cold.get(k) == v
