"""Tests for the Merkle B+ tree (FalconDB-style authenticated index)."""

import pytest

from repro.adt.btm import MerkleBTree
from repro.crypto.hashing import NULL_HASH


def _populated(n: int = 500, order: int = 8) -> MerkleBTree:
    tree = MerkleBTree(order=order)
    for i in range(n):
        tree.put(b"user%06d" % i, b"value-%d" % i)
    tree.commit()
    return tree


def test_requires_min_order():
    with pytest.raises(ValueError):
        MerkleBTree(order=2)


def test_put_get_overwrite_and_len():
    tree = MerkleBTree(order=4)
    tree.put(b"b", b"1")
    tree.put(b"a", b"2")
    tree.put(b"b", b"3")
    assert tree.get(b"b") == b"3"
    assert tree.get(b"a") == b"2"
    assert tree.get(b"zz") is None
    assert len(tree) == 2
    assert b"a" in tree and b"zz" not in tree


def test_non_bytes_rejected():
    tree = MerkleBTree()
    with pytest.raises(TypeError):
        tree.put("str-key", b"v")


def test_items_sorted_across_splits():
    tree = _populated(300, order=4)   # small order forces deep splits
    keys = [k for k, _ in tree.items()]
    assert keys == sorted(keys)
    assert len(keys) == 300


def test_commit_hashes_only_dirty_paths():
    tree = _populated(500, order=8)
    baseline = tree.hashes_computed
    tree.put(b"user%06d" % 42, b"updated")
    tree.commit()
    # one leaf-to-root path re-hashed, not the whole tree
    assert 0 < tree.hashes_computed - baseline < tree.node_count()


def test_root_deterministic_and_order_insensitive():
    a = MerkleBTree(order=6)
    b = MerkleBTree(order=6)
    items = [(b"k%04d" % i, b"v%d" % i) for i in range(200)]
    for k, v in items:
        a.put(k, v)
    for k, v in reversed(items):
        b.put(k, v)
    # same final contents but different insertion order: values agree
    assert dict(a.items()) == dict(b.items())
    # the same stream re-applied lands on the byte-identical root
    c = MerkleBTree(order=6)
    for k, v in items:
        c.put(k, v)
    assert a.commit() == c.commit()
    assert a.root != NULL_HASH


def test_root_changes_on_update():
    tree = _populated(100)
    before = tree.root
    tree.put(b"user%06d" % 7, b"tampered")
    assert tree.commit() != before


def test_prove_verify_roundtrip():
    tree = _populated(500, order=8)
    root = tree.root
    for i in (0, 42, 255, 499):
        key, value = b"user%06d" % i, b"value-%d" % i
        proof = tree.prove(key)
        assert MerkleBTree.verify_proof(key, value, proof, root)


def test_proof_rejects_wrong_value_key_and_root():
    tree = _populated(500, order=8)
    root = tree.root
    key = b"user%06d" % 42
    proof = tree.prove(key)
    assert not MerkleBTree.verify_proof(key, b"forged", proof, root)
    assert not MerkleBTree.verify_proof(b"user999999", b"v", proof, root)
    assert not MerkleBTree.verify_proof(key, b"value-42", proof,
                                        NULL_HASH)
    # a tampered sibling digest breaks the chain
    if proof["groups"]:
        group, idx = proof["groups"][0]
        group[(idx + 1) % len(group)] = NULL_HASH
        assert not MerkleBTree.verify_proof(key, b"value-42", proof, root)


def test_proof_from_stale_root_rejected():
    tree = _populated(200, order=8)
    old_root = tree.root
    tree.put(b"user%06d" % 3, b"new-value")
    tree.commit()
    proof = tree.prove(b"user%06d" % 3)
    assert MerkleBTree.verify_proof(b"user%06d" % 3, b"new-value",
                                    proof, tree.root)
    assert not MerkleBTree.verify_proof(b"user%06d" % 3, b"new-value",
                                        proof, old_root)


def test_total_bytes_and_overhead_accounting():
    tree = _populated(100)
    raw = sum(len(k) + len(v) for k, v in tree.items())
    assert tree.total_bytes() > raw          # digests + length prefixes
    assert tree.node_count() >= 1
