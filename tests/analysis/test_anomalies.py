"""Anomaly-classifier unit suite: hand-crafted histories per class.

Each test builds the smallest history that admits exactly one textbook
anomaly (or none) and asserts the MVSG cycle classifier labels it — and
only it.  These are the ground-truth cases the online detector's verdicts
on real runs are calibrated against.
"""

from repro.analysis import HistoryChecker
from repro.analysis.serializability import ANOMALY_KINDS, zero_anomalies
from repro.txn import Op, OpType, Transaction


def _committed(txn_id, reads, writes, version):
    txn = Transaction(ops=[Op(OpType.UPDATE, k, b"") for k in writes])
    txn.txn_id = txn_id
    txn.read_set = dict(reads)
    txn.write_set = {k: b"v" for k in writes}
    txn.commit_version = version
    txn.mark_committed()
    return txn


def _check(*txns):
    checker = HistoryChecker()
    checker.observe_all(txns)
    return checker.check()


def _nonzero(report):
    return {k: v for k, v in report.anomalies.items() if v}


def test_zero_anomalies_shape_matches_kinds():
    assert set(zero_anomalies()) == set(ANOMALY_KINDS)
    assert all(v == 0 for v in zero_anomalies().values())


def test_serial_history_reports_all_zero():
    report = _check(_committed(1, {"x": 0}, ["x"], 1),
                    _committed(2, {"x": 1}, ["x"], 2))
    assert report.serializable
    assert report.anomalies == zero_anomalies()
    assert report.anomaly_count == 0
    assert report.cycles == []


def test_lost_update_classified():
    """Both update x from the same snapshot: the 2-cycle carries rw both
    ways plus the ww chain edge — the defining lost-update shape."""
    report = _check(_committed(1, {"x": 0}, ["x"], 1),
                    _committed(2, {"x": 0}, ["x"], 2))
    assert not report.serializable
    assert _nonzero(report) == {"lost_update": 1}
    assert set(report.cycle) == {1, 2}


def test_write_skew_classified():
    """Disjoint writes, crossed reads from one snapshot: consecutive rw
    edges and no ww edge anywhere in the cycle."""
    report = _check(_committed(1, {"y": 0}, ["x"], 1),
                    _committed(2, {"x": 0}, ["y"], 1))
    assert not report.serializable
    assert _nonzero(report) == {"write_skew": 1}


def test_read_only_write_skew_classified():
    """Fekete's read-only anomaly: the 3-cycle closes only because the
    read-only txn saw T1's write but not T2's — two consecutive rw
    edges, so it classifies as write skew."""
    savings = _committed(1, {"s": 0}, ["s"], 1)
    write_check = _committed(2, {"c": 0, "s": 0}, ["c"], 2)
    balance = _committed(3, {"s": 1, "c": 0}, [], 0)
    report = _check(savings, write_check, balance)
    assert not report.serializable
    assert _nonzero(report) == {"write_skew": 1}
    assert set(report.cycle) == {1, 2, 3}


def test_fractured_read_classified():
    """T2 sees half of T1's atomic write pair (x@1 yes, y@1 no) and
    writes its own key so the wr/rw pair closes a cycle."""
    report = _check(_committed(1, {}, ["x", "y"], 1),
                    _committed(2, {"x": 1, "y": 0}, ["z"], 2))
    assert not report.serializable
    assert _nonzero(report) == {"fractured_read": 1}


def test_all_minimal_cycles_enumerated():
    """Two independent lost-update pairs must both be reported — the
    single-cycle ``report.cycle`` is only the first witness."""
    report = _check(_committed(1, {"x": 0}, ["x"], 1),
                    _committed(2, {"x": 0}, ["x"], 2),
                    _committed(3, {"y": 0}, ["y"], 3),
                    _committed(4, {"y": 0}, ["y"], 4))
    assert not report.serializable
    assert len(report.cycles) == 2
    assert report.cycle == report.cycles[0]
    assert _nonzero(report) == {"lost_update": 2}
    assert report.anomaly_count == 2
    covered = {frozenset(c) for c in report.cycles}
    assert covered == {frozenset({1, 2}), frozenset({3, 4})}


def test_mixed_classes_counted_separately():
    """A lost-update pair and a write-skew pair on disjoint keys land in
    their own buckets."""
    report = _check(_committed(1, {"x": 0}, ["x"], 1),
                    _committed(2, {"x": 0}, ["x"], 2),
                    _committed(3, {"q": 0}, ["p"], 3),
                    _committed(4, {"p": 0}, ["q"], 3))
    assert _nonzero(report) == {"lost_update": 1, "write_skew": 1}
