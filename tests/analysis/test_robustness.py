"""Robustness certifier: static verdicts + run cross-checks.

First half pins the certifier's verdict for every (workload, level)
pair the simulator ships.  Second half closes the loop against real
runs: a certificate of robustness must mean zero observed anomalies
(across seeds), and a non-robust verdict must be *witnessed* — the run
under the weakened level gains throughput and admits exactly the
anomaly class the certificate predicted.
"""

import pytest

from repro.analysis.robustness import (certify, smallbank_templates,
                                       ycsb_templates)
from repro.bench.harness import SMOKE, run_point, run_smallbank_point


# -- static verdicts ----------------------------------------------------------

def test_serializable_trivially_robust():
    report = certify(ycsb_templates("rmw"), "serializable")
    assert report.robust


def test_unknown_level_rejected():
    with pytest.raises(ValueError, match="unknown isolation level"):
        certify(ycsb_templates("rmw"), "repeatable_read")


def test_ycsb_rmw_verdicts():
    """Read-modify-writes: SI's first-committer-wins closes the race;
    RC admits the textbook lost-update loop."""
    assert certify(ycsb_templates("rmw"), "snapshot").robust
    rc = certify(ycsb_templates("rmw"), "read_committed")
    assert not rc.robust
    assert rc.predicted_anomaly == "lost_update"
    assert rc.counterexample == ["ycsb_rmw", "ycsb_rmw"]


def test_ycsb_blind_writes_and_queries_robust_everywhere():
    for mode in ("update", "query"):
        for level in ("read_committed", "snapshot"):
            assert certify(ycsb_templates(mode), level).robust, (mode, level)


def test_smallbank_update_mix_verdicts():
    """The five update procedures: robust against SI (every conflict
    pair overlaps on a write, so FCW aborts one), not against RC."""
    templates = smallbank_templates()
    assert certify(templates, "snapshot").robust
    rc = certify(templates, "read_committed")
    assert not rc.robust
    assert rc.predicted_anomaly == "lost_update"


def test_smallbank_with_balance_breaks_si():
    """Adding the read-only Balance template creates Fekete's dangerous
    structure: balance -> write_check -> transact_savings."""
    report = certify(smallbank_templates(query_proportion=0.3), "snapshot")
    assert not report.robust
    assert report.predicted_anomaly == "write_skew"
    assert set(report.counterexample) == {"balance", "write_check",
                                          "transact_savings"}


# -- run cross-checks ---------------------------------------------------------

def _anomalies(result):
    return {k: v for k, v in result.extras["anomalies"].items() if v}


@pytest.mark.parametrize("seed", [11, 23])
def test_certified_robust_configs_run_clean(seed):
    """Robust certificates must hold on real histories, across seeds."""
    assert certify(smallbank_templates(), "snapshot").robust
    sb = run_smallbank_point("quorum", scale=SMOKE, num_accounts=200,
                             theta=0.9, seed=seed,
                             extras={"isolation": "snapshot"})
    assert sb.extras["serializable_history"] is True
    assert _anomalies(sb) == {}

    assert certify(ycsb_templates("rmw"), "snapshot").robust
    yc = run_point("etcd", scale=SMOKE, mode="rmw", theta=0.9, seed=seed,
                   extras={"isolation": "snapshot"})
    assert yc.extras["serializable_history"] is True
    assert _anomalies(yc) == {}


def test_non_robust_rc_gains_throughput_and_admits_lost_updates():
    """The flip side of the certificate: SmallBank is NOT robust
    against RC, and the run shows both the predicted anomaly class and
    the throughput it buys."""
    verdict = certify(smallbank_templates(), "read_committed")
    assert not verdict.robust and verdict.predicted_anomaly == "lost_update"
    ser = run_smallbank_point("quorum", scale=SMOKE, num_accounts=200,
                              theta=0.9, seed=11,
                              extras={"isolation": "serializable"})
    rc = run_smallbank_point("quorum", scale=SMOKE, num_accounts=200,
                             theta=0.9, seed=11,
                             extras={"isolation": "read_committed"})
    assert rc.tps > ser.tps, (rc.tps, ser.tps)
    assert rc.extras["serializable_history"] is False
    assert rc.extras["anomalies"]["lost_update"] > 0
    assert ser.extras["serializable_history"] is True


@pytest.mark.parametrize("seed", [11, 23])
def test_non_robust_si_mix_admits_predicted_write_skew(seed):
    """The SI counterexample is live: with Balance queries mixed in,
    etcd under block-free SI admits pure write skew — the exact class
    the static witness cycle predicts, and no other."""
    verdict = certify(smallbank_templates(query_proportion=0.4), "snapshot")
    assert not verdict.robust and verdict.predicted_anomaly == "write_skew"
    # The 3-txn coincidence needs a longer run than SMOKE's 300 txns.
    scale = SMOKE.derive(measure_txns=3000)
    res = run_smallbank_point("etcd", scale=scale, num_accounts=50,
                              theta=1.0, query_proportion=0.4, seed=seed,
                              extras={"isolation": "snapshot"})
    assert res.extras["serializable_history"] is False
    anomalies = _anomalies(res)
    assert anomalies.get("write_skew", 0) > 0, anomalies
    assert set(anomalies) == {"write_skew"}, anomalies
