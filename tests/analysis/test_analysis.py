"""Tests for bottleneck analysis and serializability checking."""

import pytest

from repro.analysis import HistoryChecker, analyze_system
from repro.sim import Environment
from repro.systems import EtcdSystem, FabricSystem, QuorumSystem, SystemConfig, TiDBSystem
from repro.txn import Op, OpType, Transaction, TxnStatus
from repro.workloads import DriverConfig, YcsbConfig, YcsbWorkload, run_closed_loop


# -- serializability checker on synthetic histories ----------------------------

def _committed(txn_id, reads, writes, version):
    txn = Transaction(ops=[Op(OpType.UPDATE, k, b"") for k in writes])
    txn.txn_id = txn_id
    txn.read_set = dict(reads)
    txn.write_set = {k: b"v" for k in writes}
    txn.commit_version = version
    txn.mark_committed()
    return txn


def test_serial_history_is_serializable():
    checker = HistoryChecker()
    checker.observe(_committed(1, {"x": 0}, ["x"], 1))
    checker.observe(_committed(2, {"x": 1}, ["x"], 2))
    report = checker.check()
    assert report.serializable
    assert report.equivalent_order == [1, 2]


def test_write_skew_cycle_detected():
    """Classic write skew: T1 reads y writes x, T2 reads x writes y,
    both from the same snapshot — an rw/rw cycle."""
    checker = HistoryChecker()
    checker.observe(_committed(1, {"y": 0}, ["x"], 1))
    checker.observe(_committed(2, {"x": 0}, ["y"], 1))
    report = checker.check()
    assert not report.serializable
    assert set(report.cycle) == {1, 2}


def test_aborted_txns_ignored():
    checker = HistoryChecker()
    txn = _committed(1, {"x": 0}, ["x"], 1)
    aborted = Transaction(ops=[Op(OpType.UPDATE, "x", b"")])
    from repro.txn import AbortReason
    aborted.mark_aborted(AbortReason.WRITE_WRITE_CONFLICT)
    checker.observe(txn)
    checker.observe(aborted)
    report = checker.check()
    assert report.txn_count == 1


def test_unstamped_writes_noted():
    checker = HistoryChecker()
    txn = _committed(1, {}, ["x"], 1)
    txn.commit_version = 0
    checker.observe(txn)
    report = checker.check()
    assert any("skipped" in note for note in report.notes)


def test_reads_from_edge_orders_transactions():
    checker = HistoryChecker()
    checker.observe(_committed(5, {}, ["a"], 3))       # writes a@3
    checker.observe(_committed(9, {"a": 3}, ["b"], 4))  # reads a@3
    report = checker.check()
    assert report.serializable
    assert report.equivalent_order.index(5) < report.equivalent_order.index(9)


# -- end-to-end: systems produce serializable histories --------------------------

def _run_and_check(system_cls, **kwargs):
    env = Environment()
    system = system_cls(env, SystemConfig(num_nodes=3), **kwargs)
    system.load({f"k{i}": b"0" for i in range(10)})  # hot: 10 keys
    wl = YcsbWorkload(YcsbConfig(record_count=10, record_size=32, seed=5))
    txns = []

    def next_txn(client):
        txn = wl.next_rmw(client)
        txns.append(txn)
        return txn

    run_closed_loop(env, system, next_txn,
                    DriverConfig(clients=16, warmup_txns=5,
                                 measure_txns=150, max_sim_time=120))
    checker = HistoryChecker()
    checker.observe_all(txns)
    return checker.check()


@pytest.mark.parametrize("system_cls", [EtcdSystem, QuorumSystem,
                                        FabricSystem, TiDBSystem])
def test_committed_histories_are_serializable(system_cls):
    """The core correctness claim for every concurrency design, verified
    against the conflict graph of a highly contended run."""
    report = _run_and_check(system_cls)
    assert report.txn_count > 50
    assert report.serializable, f"cycle: {report.cycle}"


# -- bottleneck analysis ------------------------------------------------------------

def test_analyze_identifies_quorum_evm_bottleneck():
    env = Environment()
    system = QuorumSystem(env, SystemConfig(num_nodes=3))
    wl = YcsbWorkload(YcsbConfig(record_count=1_000, record_size=1000))
    system.load(wl.initial_records())
    result = run_closed_loop(env, system, wl.next_update,
                             DriverConfig(clients=128, warmup_txns=50,
                                          measure_txns=400))
    report = analyze_system(system, elapsed=result.elapsed
                            + result.stats.latency.max)
    # the leader's single EVM thread must be the most utilized resource
    assert report.bottleneck.name.startswith("evm:")


def test_analyze_render_and_saturated():
    env = Environment()
    system = EtcdSystem(env, SystemConfig(num_nodes=3))
    wl = YcsbWorkload(YcsbConfig(record_count=500, record_size=256))
    system.load(wl.initial_records())
    run_closed_loop(env, system, wl.next_update,
                    DriverConfig(clients=32, warmup_txns=10,
                                 measure_txns=200))
    report = analyze_system(system)
    text = report.render()
    assert "bottleneck report" in text
    assert isinstance(report.saturated(threshold=0.0), list)
    assert report.usages  # resources were observed
