"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.sim import Environment, Network, Node, RngRegistry


@pytest.fixture
def env() -> Environment:
    return Environment()


@pytest.fixture
def cluster(env):
    """A 4-node cluster + network, the workhorse for protocol tests."""
    network = Network(env, rng=RngRegistry(1234))
    nodes = [Node(env, f"n{i}") for i in range(4)]
    for node in nodes:
        network.attach(node)
    return network, nodes


def make_cluster(env, count: int, seed: int = 0, jitter: float = 0.0,
                 prefix: str = "n"):
    """Helper used directly by tests needing custom sizes."""
    network = Network(env, rng=RngRegistry(seed), jitter=jitter)
    nodes = [Node(env, f"{prefix}{i}") for i in range(count)]
    for node in nodes:
        network.attach(node)
    return network, nodes
