"""Tests for partitioning, 2PC, BFT 2PC, and shard formation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consensus.pbft import PbftGroup
from repro.sharding import (BftCoordinator, Decision, HashPartitioner,
                            RangePartitioner, ReconfigurationSchedule,
                            ShardFormation, TwoPhaseCoordinator, Vote,
                            WorkloadAwarePartitioner, min_shard_size,
                            shard_failure_probability)
from repro.sim import RngRegistry

from ..conftest import make_cluster


# -- partitioners --------------------------------------------------------------

def test_hash_partitioner_deterministic_and_in_range():
    hp = HashPartitioner(7)
    for i in range(200):
        shard = hp.shard_of(f"key{i}")
        assert 0 <= shard < 7
        assert shard == hp.shard_of(f"key{i}")


def test_hash_partitioner_balances_uniform_keys():
    hp = HashPartitioner(4)
    counts = [0] * 4
    for i in range(4000):
        counts[hp.shard_of(f"key{i}")] += 1
    assert min(counts) > 800  # roughly balanced


def test_hash_partitioner_rejects_zero_shards():
    with pytest.raises(ValueError):
        HashPartitioner(0)


def test_range_partitioner_boundaries():
    rp = RangePartitioner(["g", "p"])
    assert rp.num_shards == 3
    assert rp.shard_of("a") == 0
    assert rp.shard_of("g") == 1   # boundary goes right
    assert rp.shard_of("k") == 1
    assert rp.shard_of("z") == 2


def test_range_partitioner_preserves_locality():
    rp = RangePartitioner(["m"])
    shards = rp.shards_of([f"a{i}" for i in range(10)])
    assert shards == {0}


def test_workload_aware_balances_skew():
    freqs = {f"k{i}": 1.0 / (i + 1) for i in range(100)}  # zipf-ish
    wp = WorkloadAwarePartitioner(4, freqs)
    loads = wp.load_balance(freqs)
    assert max(loads) / min(loads) < 1.5
    hp_loads = [0.0] * 4
    hp = HashPartitioner(4)
    for k, f in freqs.items():
        hp_loads[hp.shard_of(k)] += f
    assert max(loads) <= max(hp_loads)  # no worse than hash placement


def test_workload_aware_falls_back_to_hash():
    wp = WorkloadAwarePartitioner(4, {"hot": 1.0})
    assert 0 <= wp.shard_of("never-seen") < 4


# -- 2PC -------------------------------------------------------------------------

class FakeParticipant:
    def __init__(self, env, vote, delay=0.001):
        self.env = env
        self.vote = vote
        self.delay = delay
        self.decision = None
        self.prepared = False

    def prepare(self, txn_id, payload):
        ev = self.env.event()

        def go():
            yield self.env.timeout(self.delay)
            self.prepared = True
            ev.succeed(self.vote)
        self.env.process(go())
        return ev

    def finalize(self, txn_id, decision):
        ev = self.env.event()

        def go():
            yield self.env.timeout(self.delay)
            self.decision = decision
            ev.succeed(True)
        self.env.process(go())
        return ev


def test_2pc_all_yes_commits(env):
    coordinator = TwoPhaseCoordinator(env)
    parts = [FakeParticipant(env, Vote.YES) for _ in range(3)]
    done = coordinator.run(1, parts)
    env.run()
    assert done.value is Decision.COMMIT
    assert all(p.decision is Decision.COMMIT for p in parts)
    assert coordinator.stats.committed == 1


def test_2pc_any_no_aborts_everywhere(env):
    coordinator = TwoPhaseCoordinator(env)
    parts = [FakeParticipant(env, Vote.YES),
             FakeParticipant(env, Vote.NO),
             FakeParticipant(env, Vote.YES)]
    done = coordinator.run(1, parts)
    env.run()
    assert done.value is Decision.ABORT
    assert all(p.decision is Decision.ABORT for p in parts)


def test_2pc_atomicity_no_split_decision(env):
    """Whatever the votes, every participant gets the same decision."""
    coordinator = TwoPhaseCoordinator(env)
    import itertools
    for votes in itertools.product([Vote.YES, Vote.NO], repeat=3):
        parts = [FakeParticipant(env, v) for v in votes]
        coordinator.run(1, parts)
        env.run()
        decisions = {p.decision for p in parts}
        assert len(decisions) == 1


def test_2pc_coordinator_crash_blocks_prepared_participants(env):
    """The trusted-coordinator weakness of Section 3.4.2."""
    coordinator = TwoPhaseCoordinator(env, extra_phase_delay=0.5)
    parts = [FakeParticipant(env, Vote.YES) for _ in range(2)]
    done = coordinator.run(1, parts)

    def crash_between_phases(env):
        yield env.timeout(0.1)  # after votes, before decision
        coordinator.crash()

    env.process(crash_between_phases(env))
    env.run()
    assert done.value is Decision.BLOCKED
    assert all(p.prepared for p in parts)
    assert all(p.decision is None for p in parts)  # stuck holding locks


def test_bft_2pc_commits_through_committee(env):
    network, nodes = make_cluster(env, 4, prefix="r")
    committee = PbftGroup(env, nodes, network, rng=RngRegistry(2))
    coordinator = BftCoordinator(env, committee)
    parts = [FakeParticipant(env, Vote.YES) for _ in range(2)]
    done = coordinator.run(1, parts)
    env.run(until=20)
    assert done.value is Decision.COMMIT
    assert coordinator.consensus_rounds == 2  # begin + decide


def test_bft_2pc_single_replica_crash_does_not_block(env):
    """Consensus liveness keeps the coordinator available (paper 3.4.2)."""
    network, nodes = make_cluster(env, 4, prefix="r")
    committee = PbftGroup(env, nodes, network, rng=RngRegistry(3))
    coordinator = BftCoordinator(env, committee)
    nodes[1].crash()  # one of 3f+1=4 replicas fails (f=1 tolerated)
    parts = [FakeParticipant(env, Vote.YES) for _ in range(2)]
    done = coordinator.run(1, parts)
    env.run(until=30)
    assert done.value is Decision.COMMIT


# -- shard formation ----------------------------------------------------------------

def test_failure_probability_monotone_in_byzantine_count():
    probs = [shard_failure_probability(100, byz, 10)
             for byz in (5, 15, 30)]
    assert probs[0] < probs[1] < probs[2]


def test_failure_probability_decreases_with_shard_size():
    p_small = shard_failure_probability(300, 60, 7)
    p_large = shard_failure_probability(300, 60, 60)
    assert p_large < p_small


def test_failure_probability_bounds():
    assert shard_failure_probability(100, 0, 10) == 0.0
    # all-byzantine population always violates the threshold
    assert shard_failure_probability(100, 100, 10) == pytest.approx(1.0)


def test_shard_size_larger_than_population_rejected():
    with pytest.raises(ValueError):
        shard_failure_probability(10, 2, 20)


def test_min_shard_size_meets_target():
    size = min_shard_size(400, 100, target_failure_prob=1e-6)
    assert shard_failure_probability(400, 100, size) <= 1e-6
    if size > 4:
        assert shard_failure_probability(400, 100, size - 1) > 1e-6


def test_formation_assignment_balanced_and_deterministic():
    sf = ShardFormation(num_shards=4)
    nodes = [f"n{i}" for i in range(20)]
    a1 = sf.assign(nodes)
    a2 = sf.assign(nodes)
    assert a1 == a2
    assert all(len(v) == 5 for v in a1.values())
    assert sorted(sum(a1.values(), [])) == sorted(nodes)


def test_reconfiguration_changes_assignment():
    sf = ShardFormation(num_shards=4)
    nodes = [f"n{i}" for i in range(20)]
    before = sf.assign(nodes)
    after = sf.reconfigure(nodes)
    assert before != after
    assert sf.epoch == 1


def test_formation_attacker_cannot_choose_placement():
    """Assignment depends on the epoch seed, not on node-chosen values:
    the same node lands in different shards across epochs."""
    sf = ShardFormation(num_shards=4)
    nodes = [f"n{i}" for i in range(40)]
    placements = set()
    for _ in range(8):
        assignment = sf.reconfigure(nodes)
        for shard, members in assignment.items():
            if "n0" in members:
                placements.add(shard)
    assert len(placements) > 1


def test_reconfiguration_schedule_duty_cycle():
    rs = ReconfigurationSchedule(period=30.0, pause=9.0)
    assert rs.duty_cycle == pytest.approx(0.7)
    assert rs.effective_throughput(1000) == pytest.approx(700)
    assert not rs.is_paused(0.0)
    assert rs.is_paused(25.0)


def test_reconfiguration_schedule_validation():
    with pytest.raises(ValueError):
        ReconfigurationSchedule(period=10.0, pause=10.0)


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 8), st.lists(st.text(min_size=1, max_size=6),
                                   min_size=2, max_size=40, unique=True))
def test_formation_partition_property(num_shards, nodes):
    """Every node is assigned to exactly one shard."""
    sf = ShardFormation(num_shards=num_shards)
    assignment = sf.assign(nodes)
    flat = sum(assignment.values(), [])
    assert sorted(flat) == sorted(nodes)
