"""Hot-shard splitting: ring invariants, determinism, and rebalancing."""

import pytest

from repro.bench.harness import SMOKE, run_point
from repro.sharding import HotSplitPartitioner
from repro.sim.costs import DEFAULT_COSTS


def _drive(partitioner, keys):
    for key in keys:
        partitioner.shard_of(key)


class TestRingInvariants:
    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            HotSplitPartitioner(0)

    def test_routes_like_hash_before_any_split(self):
        hp = HotSplitPartitioner(4)
        for i in range(500):
            assert 0 <= hp.shard_of(f"key{i}") < 4

    def test_every_key_has_exactly_one_owner_after_splits(self):
        hp = HotSplitPartitioner(4)
        keys = [f"key{i}" for i in range(2_000)]
        for _ in range(5):
            _drive(hp, keys)
            assert hp.maybe_split(force=True) is not None
        # Ring stays a partition: strictly increasing range starts, one
        # owner per range, every key routed to a valid shard — and the
        # in-range routing is a pure function of the ring, so a repeat
        # lookup lands on the same shard.
        assert hp._starts == sorted(set(hp._starts))
        assert len(hp._owners) == len(hp._starts)
        assert all(0 <= owner < 4 for owner in hp._owners)
        first = [hp.shard_of(k) for k in keys]
        second = [hp.shard_of(k) for k in keys]
        assert first == second

    def test_split_conserves_observed_load(self):
        hp = HotSplitPartitioner(2)
        _drive(hp, [f"key{i}" for i in range(1_000)])
        totals = [sum(h) for h in hp._hist]
        entry = hp.maybe_split(force=True)
        assert entry["left_load"] + entry["right_load"] == max(totals)
        # Epoch-scoped stats: the split consumed this epoch's histogram.
        assert hp.max_share() == 0.0

    def test_narrow_range_refuses_to_split(self):
        hp = HotSplitPartitioner(1)
        # Repeatedly splitting around one hot key shrinks its range by a
        # stripe factor per split; once narrower than one stripe per
        # position the cut would be degenerate and must be refused.
        for _ in range(200):
            hp.shard_of("hot")
            if hp.maybe_split(force=True) is None:
                break
        else:
            pytest.fail("narrow-range split never refused")
        hp.shard_of("hot")
        assert hp.maybe_split(force=True) is None


class TestSplitPolicy:
    def test_balanced_ring_does_not_split_unforced(self):
        hp = HotSplitPartitioner(4)
        _drive(hp, [f"key{i}" for i in range(4_000)])  # uniform hashes
        assert hp.maybe_split() is None

    def test_skewed_ring_splits_unforced_and_targets_hot_range(self):
        hp = HotSplitPartitioner(4)
        _drive(hp, [f"key{i}" for i in range(400)])
        hot = max(range(4), key=lambda r: sum(hp._hist[r]))
        _drive(hp, ["hot-key"] * 2_000)   # one range now dominates
        hot = max(range(4), key=lambda r: sum(hp._hist[r]))
        entry = hp.maybe_split()
        assert entry is not None
        assert entry["range"] == hot
        assert entry["to_shard"] != entry["from_shard"]

    def test_no_load_no_split_even_forced(self):
        hp = HotSplitPartitioner(4)
        assert hp.maybe_split(force=True) is None

    def test_split_sequence_deterministic(self):
        def run():
            hp = HotSplitPartitioner(8)
            for epoch in range(4):
                _drive(hp, [f"k{i % 97}" for i in range(1_500)])
                hp.maybe_split(force=True)
            return hp.splits, hp._starts, hp._owners

        assert run() == run()


class TestAhlHotSplitRebalance:
    # Reconfig every 50 ms so several epoch boundaries (= split
    # opportunities) land inside a smoke-sized measured window.
    FAST_RECONFIG = DEFAULT_COSTS.derive(ahl_reconfig_period=0.05,
                                         ahl_reconfig_pause=0.01)

    def _run(self):
        return run_point(
            "ahl", scale=SMOKE, num_nodes=192, seed=11, theta=0.99,
            mode="update", measure_txns=600, costs=self.FAST_RECONFIG,
            system_kwargs={"hot_split": True})

    def test_zipf_64_shards_rebalances_and_is_seeded(self):
        result = self._run()
        partitioner = result.extras["system"].partitioner
        splits = partitioner.splits
        # Zipf-0.99 concentrates >10% of accesses in the hottest range
        # (vs a 1/64 fair share), so the epoch-boundary policy must have
        # split at least once — and the post-split epochs must show the
        # hottest shard carrying a smaller share than what triggered the
        # first split.
        assert len(splits) >= 1, "no split fired on a 0.99-Zipf run"
        assert partitioner.max_share() < splits[0]["max_share_before"]
        assert all(s["to_shard"] != s["from_shard"] for s in splits)
        # Seeded fingerprint: a same-seed rerun replays the identical
        # split schedule and the identical measured universe.
        again = self._run()
        assert again.extras["system"].partitioner.splits == splits
        assert repr(again.tps) == repr(result.tps)
        assert repr(again.mean_latency) == repr(result.mean_latency)
