"""Tests for serial execution, OCC, 2PL (wait-die), and percolator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.concurrency import (LockDenied, LockManager, LockMode,
                               OccSimulator, OccValidator, PercolatorStore,
                               PrewriteConflict, SerialExecutor,
                               TimestampOracle, endorsements_consistent)
from repro.txn import AbortReason, Op, OpType, Transaction, TxnStatus, VersionedStore


# -- serial executor -----------------------------------------------------------

def test_serial_execute_write_and_read_sets():
    store = VersionedStore()
    store.put("a", b"old", 1)
    ex = SerialExecutor(store)
    txn = Transaction.update("a", b"new")
    assert ex.execute(txn, version=2)
    assert store.get("a") == (b"new", 2)
    assert txn.read_set == {"a": 1}
    assert txn.status is TxnStatus.COMMITTED


def test_serial_logic_abort():
    store = VersionedStore()
    ex = SerialExecutor(store)
    txn = Transaction(ops=[Op(OpType.UPDATE, "k", b"")],
                      logic=lambda reads: None)
    assert not ex.execute(txn, version=1)
    assert txn.abort_reason is AbortReason.LOGIC
    assert "k" not in store


def test_serial_logic_derived_writes():
    store = VersionedStore()
    store.put("bal", (100).to_bytes(8, "big"), 1)

    def logic(reads):
        balance = int.from_bytes(reads["bal"], "big")
        return {"bal": (balance + 10).to_bytes(8, "big")}

    ex = SerialExecutor(store)
    txn = Transaction(ops=[Op(OpType.UPDATE, "bal", b"")], logic=logic)
    assert ex.execute(txn, version=2)
    assert int.from_bytes(store.get("bal")[0], "big") == 110


def test_serial_replay_is_deterministic():
    def run():
        store = VersionedStore()
        ex = SerialExecutor(store)
        txns = [Transaction.write(f"k{i % 3}", f"v{i}".encode())
                for i in range(10)]
        ex.replay(txns, start_version=0)
        return store.snapshot()

    assert run() == run()


# -- OCC --------------------------------------------------------------------------

def test_occ_non_conflicting_both_commit():
    store = VersionedStore()
    store.put("a", b"0", 1)
    store.put("b", b"0", 1)
    sim, val = OccSimulator(store), OccValidator(store)
    t1, t2 = Transaction.update("a", b"1"), Transaction.update("b", b"2")
    sim.simulate(t1)
    sim.simulate(t2)
    assert val.validate_and_commit(t1, 2)
    assert val.validate_and_commit(t2, 2)


def test_occ_stale_read_aborts():
    store = VersionedStore()
    store.put("a", b"0", 1)
    sim, val = OccSimulator(store), OccValidator(store)
    t1, t2 = Transaction.update("a", b"1"), Transaction.update("a", b"2")
    sim.simulate(t1)
    sim.simulate(t2)  # same snapshot
    assert val.validate_and_commit(t1, 2)
    assert not val.validate_and_commit(t2, 2)
    assert t2.abort_reason is AbortReason.READ_WRITE_CONFLICT


def test_occ_validate_block_intra_block_conflicts():
    store = VersionedStore()
    store.put("hot", b"0", 1)
    sim, val = OccSimulator(store), OccValidator(store)
    txns = [Transaction.update("hot", f"v{i}".encode()) for i in range(5)]
    for t in txns:
        sim.simulate(t)
    committed = val.validate_block(txns, block_version=2)
    assert len(committed) == 1  # first wins, rest abort on stale reads


def test_occ_simulation_does_not_mutate_state():
    store = VersionedStore()
    store.put("a", b"0", 1)
    OccSimulator(store).simulate(Transaction.update("a", b"X"))
    assert store.get("a") == (b"0", 1)


def test_occ_blind_write_never_conflicts():
    store = VersionedStore()
    store.put("a", b"0", 1)
    sim, val = OccSimulator(store), OccValidator(store)
    t1 = Transaction.write("a", b"1")  # blind write: empty read set
    t2 = Transaction.write("a", b"2")
    sim.simulate(t1)
    sim.simulate(t2)
    assert val.validate_and_commit(t1, 2)
    assert val.validate_and_commit(t2, 3)


def test_endorsement_consistency():
    assert endorsements_consistent([])
    assert endorsements_consistent([{"a": 1}])
    assert endorsements_consistent([{"a": 1}, {"a": 1}])
    assert not endorsements_consistent([{"a": 1}, {"a": 2}])
    assert not endorsements_consistent([{"a": 1}, {"a": 1, "b": 1}])


def test_occ_serializability_equivalent_to_serial():
    """Committed OCC transactions produce a state reachable by some serial
    execution (here: commit order)."""
    store = VersionedStore()
    for key in "abc":
        store.put(key, b"0", 1)
    sim, val = OccSimulator(store), OccValidator(store)
    txns = [Transaction.update(k, f"{i}".encode())
            for i, k in enumerate("abcabc")]
    for t in txns:
        sim.simulate(t)
    committed = val.validate_block(txns, 2)
    # replay committed serially on a fresh store: states must match
    replay = VersionedStore()
    for key in "abc":
        replay.put(key, b"0", 1)
    SerialExecutor(replay).replay(
        [Transaction(ops=t.ops) for t in committed], start_version=1)
    for key in "abc":
        assert store.get(key)[0] == replay.get(key)[0]


# -- 2PL wait-die -------------------------------------------------------------------

def test_waitdie_older_waits_younger_dies(env):
    lm = LockManager(env)
    held = lm.acquire(5, "k", LockMode.EXCLUSIVE)
    assert held.triggered and held.ok
    younger = lm.acquire(9, "k", LockMode.EXCLUSIVE)
    assert younger.triggered and not younger.ok  # dies
    older = lm.acquire(1, "k", LockMode.EXCLUSIVE)
    assert not older.triggered  # waits
    lm.release(5, "k")
    env.run()
    assert older.triggered and older.ok


def test_shared_locks_are_compatible(env):
    lm = LockManager(env)
    s1 = lm.acquire(1, "k", LockMode.SHARED)
    s2 = lm.acquire(2, "k", LockMode.SHARED)
    assert s1.triggered and s2.triggered
    x = lm.acquire(0, "k", LockMode.EXCLUSIVE)
    assert not x.triggered
    lm.release(1, "k")
    lm.release(2, "k")
    env.run()
    assert x.triggered and x.ok


def test_reentrant_and_upgrade(env):
    lm = LockManager(env)
    assert lm.acquire(1, "k", LockMode.SHARED).triggered
    assert lm.acquire(1, "k", LockMode.SHARED).triggered   # re-entrant
    up = lm.acquire(1, "k", LockMode.EXCLUSIVE)            # sole sharer
    assert up.triggered and up.ok
    assert lm.held_by(1) == ["k"]


def test_release_all_wakes_waiters_and_fails_own_waits(env):
    lm = LockManager(env)
    lm.acquire(1, "a", LockMode.EXCLUSIVE)
    lm.acquire(1, "b", LockMode.EXCLUSIVE)
    w = lm.acquire(0, "a", LockMode.EXCLUSIVE)  # older waits
    lm.release_all(1)
    env.run()
    assert w.triggered and w.ok
    assert lm.held_by(1) == []


def test_no_deadlock_under_wait_die(env):
    """Classic deadlock pattern cannot block forever under wait-die."""
    lm = LockManager(env)
    a_first = lm.acquire(1, "A", LockMode.EXCLUSIVE)
    b_first = lm.acquire(2, "B", LockMode.EXCLUSIVE)
    assert a_first.triggered and b_first.triggered
    # txn 2 (younger) requests A: dies immediately
    cross1 = lm.acquire(2, "A", LockMode.EXCLUSIVE)
    assert cross1.triggered and not cross1.ok
    # txn 1 (older) requests B: waits
    cross2 = lm.acquire(1, "B", LockMode.EXCLUSIVE)
    assert not cross2.triggered
    # txn 2 aborts and releases: txn 1 proceeds — no deadlock
    lm.release_all(2)
    env.run()
    assert cross2.triggered and cross2.ok


def test_fifo_grant_order_for_waiting_elders(env):
    """Waiters queue FIFO; each later waiter must be older (wait-die)."""
    lm = LockManager(env)
    lm.acquire(10, "k", LockMode.EXCLUSIVE)
    w1 = lm.acquire(2, "k", LockMode.EXCLUSIVE)   # older than holder
    w2 = lm.acquire(1, "k", LockMode.EXCLUSIVE)   # oldest of all
    assert not w1.triggered and not w2.triggered
    lm.release(10, "k")
    env.run()
    assert w1.triggered and w1.ok                 # FIFO: first waiter wins
    assert not w2.triggered                       # still queued behind

def test_younger_than_waiter_dies(env):
    """A requester younger than an existing waiter dies (wait-die)."""
    lm = LockManager(env)
    lm.acquire(10, "k", LockMode.EXCLUSIVE)
    older = lm.acquire(1, "k", LockMode.EXCLUSIVE)
    assert not older.triggered
    younger = lm.acquire(5, "k", LockMode.EXCLUSIVE)
    assert younger.triggered and not younger.ok


def test_queue_length(env):
    lm = LockManager(env)
    lm.acquire(9, "k", LockMode.EXCLUSIVE)
    lm.acquire(2, "k", LockMode.EXCLUSIVE)
    lm.acquire(1, "k", LockMode.EXCLUSIVE)  # ever-older requesters wait
    assert lm.queue_length("k") == 2
    assert lm.queue_length("unknown") == 0


# -- percolator ------------------------------------------------------------------------

def test_percolator_commit_roundtrip():
    ps, oracle = PercolatorStore(), TimestampOracle()
    start = oracle.next()
    ps.prewrite(1, ["a", "b"], "a", start)
    commit = oracle.next()
    ps.commit(1, {"a": b"1", "b": b"2"}, commit)
    assert ps.store.get("a") == (b"1", commit)
    assert not ps.is_locked("a") and not ps.is_locked("b")


def test_percolator_requires_primary_in_keys():
    ps = PercolatorStore()
    with pytest.raises(ValueError):
        ps.prewrite(1, ["a"], "zz", 1)


def test_percolator_lock_conflict_rolls_back_partial():
    ps, oracle = PercolatorStore(), TimestampOracle()
    ps.prewrite(1, ["b"], "b", oracle.next())
    with pytest.raises(PrewriteConflict):
        ps.prewrite(2, ["a", "b"], "a", oracle.next())
    # txn 2's partial lock on "a" must have been rolled back
    assert not ps.is_locked("a")
    assert ps.lock_owner("b") == 1


def test_percolator_write_write_conflict():
    ps, oracle = PercolatorStore(), TimestampOracle()
    start_early = oracle.next()
    ps.prewrite(1, ["a"], "a", oracle.next())
    ps.commit(1, {"a": b"x"}, oracle.next())
    with pytest.raises(PrewriteConflict):
        ps.prewrite(2, ["a"], "a", start_early)  # stale snapshot


def test_percolator_commit_without_lock_is_error():
    ps = PercolatorStore()
    with pytest.raises(RuntimeError):
        ps.commit(1, {"a": b"x"}, 5)


def test_percolator_rollback_clears_only_own_locks():
    ps, oracle = PercolatorStore(), TimestampOracle()
    ps.prewrite(1, ["a"], "a", oracle.next())
    ps.prewrite(2, ["b"], "b", oracle.next())
    ps.rollback(1, ["a", "b"])
    assert not ps.is_locked("a")
    assert ps.lock_owner("b") == 2


def test_oracle_monotonic():
    oracle = TimestampOracle()
    stamps = [oracle.next() for _ in range(100)]
    assert stamps == sorted(stamps)
    assert len(set(stamps)) == 100


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(1, 5), st.sampled_from("abc")),
                min_size=1, max_size=30))
def test_percolator_atomicity_property(schedule):
    """Interleaved prewrite/commit of single-key txns: a key is never left
    locked after its txn commits or rolls back, and committed versions
    are monotone."""
    ps, oracle = PercolatorStore(), TimestampOracle()
    last_commit_ts: dict[str, int] = {}
    for txn_id, key in schedule:
        start = oracle.next()
        try:
            ps.prewrite((txn_id, start), [key], key, start)
        except PrewriteConflict:
            continue
        commit = oracle.next()
        ps.commit((txn_id, start), {key: f"{txn_id}".encode()}, commit)
        assert not ps.is_locked(key)
        assert commit > last_commit_ts.get(key, 0)
        last_commit_ts[key] = commit
