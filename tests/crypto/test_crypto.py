"""Tests for digests and modelled signatures."""

import pytest

from repro.crypto import (HASH_SIZE, KeyPair, NULL_HASH, hash_concat,
                          hash_pair, sha256, sign, verify)


def test_sha256_known_vector():
    # SHA-256 of empty input is a fixed, well-known digest.
    assert sha256(b"").hex() == (
        "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855")


def test_sha256_type_check():
    with pytest.raises(TypeError):
        sha256("not bytes")


def test_hash_pair_is_order_sensitive():
    a, b = sha256(b"a"), sha256(b"b")
    assert hash_pair(a, b) != hash_pair(b, a)


def test_hash_concat_length_prefix_disambiguates():
    # ("ab", "c") must differ from ("a", "bc") — raw concatenation would
    # collide, the length prefix prevents it.
    assert hash_concat(b"ab", b"c") != hash_concat(b"a", b"bc")


def test_null_hash_shape():
    assert len(NULL_HASH) == HASH_SIZE
    assert NULL_HASH == b"\x00" * 32


def test_sign_verify_roundtrip():
    key = KeyPair.generate("alice")
    sig = sign(key, b"message")
    assert verify(key, b"message", sig)


def test_verify_rejects_tampered_message():
    key = KeyPair.generate("alice")
    sig = sign(key, b"message")
    assert not verify(key, b"messagX", sig)


def test_verify_rejects_wrong_key():
    alice, bob = KeyPair.generate("alice"), KeyPair.generate("bob")
    sig = sign(alice, b"m")
    assert not verify(bob, b"m", sig)


def test_verify_rejects_forged_tag():
    from repro.crypto.signatures import Signature
    key = KeyPair.generate("alice")
    forged = Signature(signer="alice", tag=b"\x00" * 32)
    assert not verify(key, b"m", forged)


def test_keypair_generation_deterministic():
    assert KeyPair.generate("x") == KeyPair.generate("x")
    assert KeyPair.generate("x") != KeyPair.generate("y")


def test_signature_size_matches_ecdsa_der():
    key = KeyPair.generate("alice")
    assert sign(key, b"m").size == 71
