"""Raft protocol tests: normal case, elections, failover, safety."""

import pytest

from repro.consensus.raft import NotLeader, RaftConfig, RaftGroup
from repro.sim import Environment, Network, Node, RngRegistry

from ..conftest import make_cluster


def make_group(env, n, seed=1, jitter=0.0, **config_kw):
    network, nodes = make_cluster(env, n, seed=seed, jitter=jitter)
    group = RaftGroup(env, nodes, network,
                      config=RaftConfig(**config_kw) if config_kw else None,
                      rng=RngRegistry(seed))
    return group, network, nodes


def drive(env, group, count, results, size=256):
    def client(env):
        i = 0
        while i < count:
            leader = group.leader
            if leader is None:
                yield env.timeout(0.1)
                continue
            ev = leader.propose({"op": i}, size=size)
            yield env.any_of([ev, env.timeout(3.0)])
            if ev.triggered and ev.ok:
                results.append(ev.value)
                i += 1
            else:
                yield env.timeout(0.1)
    env.process(client(env))


def test_normal_case_commits_in_order(env):
    group, _net, _nodes = make_group(env, 3)
    results = []
    drive(env, group, 50, results)
    env.run(until=10)
    assert len(results) == 50
    indices = [idx for idx, _item in results]
    assert indices == sorted(indices)


def test_all_replicas_converge(env):
    group, _net, _nodes = make_group(env, 5)
    results = []
    drive(env, group, 40, results)
    env.run(until=20)
    logs = {tuple((e.term, e.item["op"]) for e in r.log[:r.commit_index])
            for r in group.replicas.values()}
    assert len(logs) == 1  # identical committed prefixes
    assert all(r.commit_index == 40 for r in group.replicas.values())


def test_propose_to_follower_fails_with_hint(env):
    group, _net, _nodes = make_group(env, 3)
    env.run(until=1.0)
    followers = [r for r in group.replicas.values() if r.role != "leader"]
    ev = followers[0].propose({"op": 1})
    assert ev.triggered and not ev.ok
    assert isinstance(ev.value, NotLeader)


def test_leader_crash_triggers_failover_and_progress(env):
    group, _net, _nodes = make_group(env, 5, seed=3)
    results = []

    def client(env):
        i = 0
        while i < 60:
            leader = group.leader
            if leader is None:
                yield env.timeout(0.2)
                continue
            ev = leader.propose({"op": i})
            yield env.any_of([ev, env.timeout(2.0)])
            if ev.triggered and ev.ok:
                results.append(ev.value)
                i += 1
                if i == 30:
                    leader.node.crash()
            else:
                yield env.timeout(0.1)

    env.process(client(env))
    env.run(until=60)
    assert len(results) == 60
    # exactly one live leader at the end, with a higher term
    live_leaders = [r for r in group.replicas.values()
                    if r.role == "leader" and not r.node.crashed]
    assert len(live_leaders) == 1
    assert live_leaders[0].term >= 2


def test_committed_entries_survive_leader_crash(env):
    group, _net, _nodes = make_group(env, 5, seed=4)
    results = []
    drive(env, group, 25, results)
    env.run(until=10)
    assert len(results) == 25
    committed_ops = [item["op"] for _idx, item in results]
    old_leader = group.leader
    old_leader.node.crash()
    env.run(until=40)
    new_leader = group.leader
    assert new_leader is not None and new_leader is not old_leader
    new_ops = [e.item["op"] for e in
               new_leader.log[:new_leader.commit_index]]
    # every committed op is retained, in order
    assert new_ops[:len(committed_ops)] == committed_ops


def test_minority_partition_cannot_commit(env):
    group, network, nodes = make_group(env, 5, seed=5)
    env.run(until=1.0)
    leader = group.leader
    minority = {leader.name}
    majority = {n.name for n in nodes} - minority
    network.partition(minority, majority)
    ev = leader.propose({"op": "isolated"})
    env.run(until=8.0)
    # the isolated leader cannot gather a quorum
    assert not ev.triggered or not ev.ok
    assert leader.commit_index == 0


def test_majority_partition_elects_new_leader_and_old_steps_down(env):
    group, network, nodes = make_group(env, 5, seed=6)
    env.run(until=1.0)
    old_leader = group.leader
    minority = {old_leader.name}
    majority = {n.name for n in nodes} - minority
    network.partition(minority, majority)
    env.run(until=10.0)
    majority_leaders = [r for r in group.replicas.values()
                        if r.role == "leader" and r.name in majority]
    assert len(majority_leaders) == 1
    network.heal()
    env.run(until=20.0)
    # old leader observes the higher term and steps down
    assert group.replicas[old_leader.name].role != "leader" or \
        group.replicas[old_leader.name].term >= majority_leaders[0].term


def test_election_safety_single_leader_per_term(env):
    """Across a run with a crash, no term ever has two leaders."""
    group, _net, _nodes = make_group(env, 5, seed=7)
    leaders_by_term: dict[int, set] = {}

    def monitor(env):
        while True:
            for r in group.replicas.values():
                if r.role == "leader":
                    leaders_by_term.setdefault(r.term, set()).add(r.name)
            yield env.timeout(0.05)

    env.process(monitor(env))
    results = []
    drive(env, group, 10, results)
    env.run(until=5)
    group.leader.node.crash()
    env.run(until=30)
    for term, names in leaders_by_term.items():
        assert len(names) == 1, f"term {term} had leaders {names}"


def test_log_matching_after_heavy_load(env):
    group, _net, _nodes = make_group(env, 3, seed=8, jitter=0.0005)
    results = []
    for _ in range(4):
        drive(env, group, 50, results)
    env.run(until=30)
    assert len(results) == 200
    replicas = list(group.replicas.values())
    min_commit = min(r.commit_index for r in replicas)
    assert min_commit > 0
    reference = [(e.term, e.item["op"])
                 for e in replicas[0].log[:min_commit]]
    for replica in replicas[1:]:
        assert [(e.term, e.item["op"])
                for e in replica.log[:min_commit]] == reference


def test_batching_respects_max_batch(env):
    group, _net, _nodes = make_group(
        env, 3, batch_window=0.05, max_batch=4)
    leader = group.leader
    events = [leader.propose({"op": i}) for i in range(10)]
    env.run(until=5)
    assert all(ev.triggered and ev.ok for ev in events)


def test_single_node_cluster_commits_alone(env):
    group, _net, _nodes = make_group(env, 1)
    ev = group.propose({"op": 0})
    env.run(until=2)
    assert ev.triggered and ev.ok
