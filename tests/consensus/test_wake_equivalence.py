"""Seeded fingerprint tests: wake-on-proposal must be outcome-preserving.

Each scenario drives one consensus protocol with a deterministic proposal
schedule that exercises the paths the wake-on-proposal refactor touched:
batch closes on the ``batch_window`` grid, max-batch kicks, long idle
stretches (heartbeat pacing), and bursts of same-time proposals.  The
full observable trace — every applied (time, item) pair plus message and
protocol counters — is hashed, and the digest is asserted against a
golden captured from the pre-refactor polling implementation.

A digest change here means the refactor altered *simulation semantics*,
not just wall-clock speed; investigate before updating a golden.
"""

from __future__ import annotations

import hashlib

from repro.consensus.pbft import PbftConfig, PbftGroup
from repro.consensus.ibft import IbftConfig, IbftGroup
from repro.consensus.primarybackup import ChainReplication
from repro.consensus.raft import RaftConfig, RaftGroup
from repro.consensus.sharedlog import OrderingService, SharedLogConfig
from repro.consensus.tendermint import TendermintConfig, TendermintGroup
from repro.sim.kernel import Environment
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.rng import RngRegistry


def _cluster(env, n, prefix="n"):
    network = Network(env)
    nodes = [Node(env, f"{prefix}{i}") for i in range(n)]
    for node in nodes:
        network.attach(node)
    return network, nodes


def _consume(env, store, sink, label):
    def loop():
        while True:
            item = yield store.get()
            sink.append(f"{label}@{env.now!r}:{item!r}")
    env.process(loop(), name=f"fp-consume:{label}")


def _digest(trace: list[str]) -> str:
    return hashlib.sha256("\n".join(trace).encode()).hexdigest()[:16]


def _schedule_proposals(env, propose, trace):
    """The shared proposal schedule: trickle, burst, idle gap, trickle."""

    def on_commit(tag):
        def cb(ev):
            trace.append(f"ack:{tag}@{env.now!r}:ok={ev._ok}")
        return cb

    def trickle(start, count, gap, tag):
        yield env.timeout(start)
        for i in range(count):
            ev = propose((tag, i))
            ev.callbacks is None or ev.callbacks.append(on_commit(f"{tag}{i}"))
            yield env.timeout(gap)

    def burst(start, count, tag):
        yield env.timeout(start)
        for i in range(count):
            ev = propose((tag, i))
            ev.callbacks is None or ev.callbacks.append(on_commit(f"{tag}{i}"))

    env.process(trickle(0.0021, 12, 0.0007, "a"), name="fp-trickle-a")
    env.process(burst(0.0113, 9, "b"), name="fp-burst-b")
    # long idle gap here: heartbeat / pacing behaviour must be identical
    env.process(trickle(0.31, 7, 0.0019, "c"), name="fp-trickle-c")


def raft_trace() -> str:
    env = Environment()
    network, nodes = _cluster(env, 5)
    group = RaftGroup(env, nodes, network,
                      config=RaftConfig(batch_window=0.001, max_batch=4,
                                        heartbeat_interval=0.05),
                      rng=RngRegistry(42))
    trace: list[str] = []
    leader = group.replicas[nodes[0].name]
    follower = group.replicas[nodes[2].name]
    _consume(env, leader.applied, trace, "leader")
    _consume(env, follower.applied, trace, "follower")
    _schedule_proposals(env, lambda item: group.propose(item), trace)
    env.run(until=0.6)
    trace.append(f"commits={[group.replicas[n.name].commits for n in nodes]}")
    trace.append(f"elections={[group.replicas[n.name].elections_started for n in nodes]}")
    trace.append(f"msgs={network.messages_sent} bytes={network.bytes_sent}")
    return _digest(trace)


def pbft_trace() -> str:
    env = Environment()
    network, nodes = _cluster(env, 4)
    group = PbftGroup(env, nodes, network,
                      config=PbftConfig(batch_window=0.005, max_batch=4,
                                        heartbeat_interval=0.05,
                                        view_change_timeout=5.0),
                      rng=RngRegistry(42))
    trace: list[str] = []
    primary = group.replicas[nodes[0].name]
    backup = group.replicas[nodes[1].name]
    _consume(env, primary.applied, trace, "primary")
    _consume(env, backup.applied, trace, "backup")
    _schedule_proposals(env, lambda item: group.propose(item), trace)
    env.run(until=0.6)
    trace.append(f"exec={[group.replicas[n.name].executed_seq for n in nodes]}")
    trace.append(f"views={[group.replicas[n.name].view_changes_count for n in nodes]}")
    trace.append(f"msgs={network.messages_sent} bytes={network.bytes_sent}")
    return _digest(trace)


def ibft_trace() -> str:
    env = Environment()
    network, nodes = _cluster(env, 4)
    group = IbftGroup(env, nodes, network,
                      config=IbftConfig(block_interval=0.02,
                                        view_change_timeout=5.0),
                      rng=RngRegistry(42))
    trace: list[str] = []
    primary = group.replicas[nodes[0].name]
    _consume(env, primary.applied, trace, "primary")
    _schedule_proposals(env, lambda item: group.propose(item), trace)
    env.run(until=0.6)
    trace.append(f"exec={[group.replicas[n.name].executed_seq for n in nodes]}")
    trace.append(f"msgs={network.messages_sent} bytes={network.bytes_sent}")
    return _digest(trace)


def tendermint_trace() -> str:
    env = Environment()
    network, nodes = _cluster(env, 4)
    group = TendermintGroup(env, nodes, network,
                           config=TendermintConfig(block_interval=0.01,
                                                   max_block_txns=6,
                                                   round_timeout=0.05),
                           rng=RngRegistry(42))
    trace: list[str] = []
    r0 = group.replicas[nodes[0].name]
    r2 = group.replicas[nodes[2].name]
    _consume(env, r0.applied, trace, "r0")
    _consume(env, r2.applied, trace, "r2")
    _schedule_proposals(env, lambda item: group.propose(item), trace)
    env.run(until=0.6)
    trace.append(f"heights={[group.replicas[n.name].height for n in nodes]}")
    trace.append(f"commits={[group.replicas[n.name].commits for n in nodes]}")
    trace.append(f"wasted={[group.replicas[n.name].rounds_wasted for n in nodes]}")
    trace.append(f"msgs={network.messages_sent} bytes={network.bytes_sent}")
    return _digest(trace)


def sharedlog_trace() -> str:
    env = Environment()
    network, nodes = _cluster(env, 3, prefix="ord")
    svc = OrderingService(env, nodes, network,
                          config=SharedLogConfig(block_max_items=5,
                                                 block_timeout=0.05),
                          rng=RngRegistry(42))
    trace: list[str] = []
    stream = svc.subscribe_local()
    _consume(env, stream, trace, "blocks")
    _schedule_proposals(env, lambda item: svc.append(item), trace)
    env.run(until=0.6)
    trace.append(f"cut={svc.blocks_cut} ordered={svc.items_ordered}")
    trace.append(f"msgs={network.messages_sent} bytes={network.bytes_sent}")
    return _digest(trace)


def chain_trace() -> str:
    env = Environment()
    network, nodes = _cluster(env, 3, prefix="ch")
    chain = ChainReplication(env, nodes, network, rng=RngRegistry(42))
    trace: list[str] = []
    for node in nodes:
        _consume(env, chain.applied[node.name], trace, node.name)
    _schedule_proposals(env, lambda item: chain.propose(item), trace)
    env.run(until=0.6)
    trace.append(f"commits={chain.commits}")
    trace.append(f"msgs={network.messages_sent} bytes={network.bytes_sent}")
    return _digest(trace)


#: Golden digests captured from the pre-refactor (poll-at-batch_window)
#: implementation.  Wake-on-proposal must reproduce them byte-for-byte.
GOLDEN = {
    "raft": "5748605fedb333c8",
    "pbft": "4fd10ab17d42a01a",
    "ibft": "9d1bf11313af46c4",
    "tendermint": "a26cce4e036300e1",
    "sharedlog": "b601095dba4c964b",
    "chain": "579dc49ea6951b9c",
}


def test_raft_fingerprint():
    assert raft_trace() == GOLDEN["raft"]


def test_pbft_fingerprint():
    assert pbft_trace() == GOLDEN["pbft"]


def test_ibft_fingerprint():
    assert ibft_trace() == GOLDEN["ibft"]


def test_tendermint_fingerprint():
    assert tendermint_trace() == GOLDEN["tendermint"]


def test_sharedlog_fingerprint():
    assert sharedlog_trace() == GOLDEN["sharedlog"]


def test_chain_fingerprint():
    assert chain_trace() == GOLDEN["chain"]


if __name__ == "__main__":  # capture utility: print fresh digests
    for name, fn in [("raft", raft_trace), ("pbft", pbft_trace),
                     ("ibft", ibft_trace), ("tendermint", tendermint_trace),
                     ("sharedlog", sharedlog_trace), ("chain", chain_trace)]:
        print(f'    "{name}": "{fn()}",')
