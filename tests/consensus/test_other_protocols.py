"""Tests for IBFT, PoW, Tendermint, chain replication, shared log."""

import pytest

from repro.consensus import (ChainReplication, IbftConfig, IbftGroup,
                             OrderingService, PowConfig, PowNetwork,
                             SharedLogConfig, TendermintConfig,
                             TendermintGroup)
from repro.sim import Node, RngRegistry

from ..conftest import make_cluster


# -- IBFT -----------------------------------------------------------------------

def test_ibft_commits_blocks(env):
    network, nodes = make_cluster(env, 4, prefix="i")
    group = IbftGroup(env, nodes, network, rng=RngRegistry(2))
    events = [group.propose({"op": i}) for i in range(20)]
    env.run(until=10)
    assert all(ev.triggered and ev.ok for ev in events)


def test_ibft_block_interval_paces_batches(env):
    network, nodes = make_cluster(env, 4, prefix="i")
    config = IbftConfig(block_interval=0.2)
    group = IbftGroup(env, nodes, network, config=config,
                      rng=RngRegistry(2))
    done_times = []

    def client(env):
        for i in range(3):
            ev = group.propose({"op": i})
            yield ev
            done_times.append(env.now)

    env.process(client(env))
    env.run(until=10)
    assert len(done_times) == 3
    # consecutive single proposals land in different block rounds
    assert done_times[1] - done_times[0] >= 0.15


def test_ibft_tolerates_f_crashes(env):
    network, nodes = make_cluster(env, 7, prefix="i")  # f = 2
    group = IbftGroup(env, nodes, network, rng=RngRegistry(3))
    nodes[5].crash()
    nodes[6].crash()
    events = [group.propose({"op": i}) for i in range(10)]
    env.run(until=20)
    assert all(ev.triggered and ev.ok for ev in events)


# -- PoW ---------------------------------------------------------------------------

def test_pow_confirms_transactions(env):
    network, nodes = make_cluster(env, 4, prefix="w")
    pow_net = PowNetwork(env, nodes, network,
                         PowConfig(block_interval=1.0),
                         rng=RngRegistry(4))
    events = [pow_net.propose({"op": i}) for i in range(20)]
    env.run(until=120)
    confirmed = sum(1 for ev in events if ev.triggered)
    assert confirmed == 20


def test_pow_chains_converge_longest_wins(env):
    network, nodes = make_cluster(env, 5, prefix="w")
    pow_net = PowNetwork(env, nodes, network,
                         PowConfig(block_interval=0.5),
                         rng=RngRegistry(5))
    env.run(until=60)
    heights = [m.main_chain_length() for m in pow_net.miners.values()]
    assert max(heights) - min(heights) <= 1  # all miners near the tip
    assert max(heights) > 50  # steady block production


def test_pow_forks_appear_with_high_latency(env):
    """Propagation delay comparable to block interval causes forks."""
    network, nodes = make_cluster(env, 5, prefix="w")
    network.costs = network.costs.derive(net_latency=0.2)
    pow_net = PowNetwork(env, nodes, network,
                         PowConfig(block_interval=0.4),
                         rng=RngRegistry(6))
    env.run(until=120)
    assert pow_net.total_forks() > 0


def test_pow_hash_share_validation(env):
    network, nodes = make_cluster(env, 2, prefix="w")
    with pytest.raises(ValueError):
        PowNetwork(env, nodes, network, shares=[0.9, 0.3])


def test_pow_majority_miner_wins_most_blocks(env):
    network, nodes = make_cluster(env, 2, prefix="w")
    pow_net = PowNetwork(env, nodes, network,
                         PowConfig(block_interval=0.2),
                         rng=RngRegistry(7), shares=[0.9, 0.1])
    env.run(until=100)
    big = pow_net.miners[nodes[0].name].blocks_mined
    small = pow_net.miners[nodes[1].name].blocks_mined
    assert big > 3 * small


# -- Tendermint -----------------------------------------------------------------------

def test_tendermint_commits_and_rotates_proposer(env):
    network, nodes = make_cluster(env, 4, prefix="t")
    group = TendermintGroup(env, nodes, network,
                            config=TendermintConfig(block_interval=0.05),
                            rng=RngRegistry(8))
    events = [group.propose({"op": i}) for i in range(10)]
    env.run(until=30)
    assert all(ev.triggered for ev in events)
    heights = {r.height for r in group.replicas.values()}
    assert max(heights) >= 2  # several heights, hence several proposers


def test_tendermint_one_height_at_a_time(env):
    network, nodes = make_cluster(env, 4, prefix="t")
    group = TendermintGroup(env, nodes, network, rng=RngRegistry(9))
    results = []

    def client(env):
        for i in range(12):
            ev = group.propose({"op": i})
            yield ev
            results.append(ev.value)

    env.process(client(env))
    env.run(until=60)
    heights = [h for h, _item in results]
    assert heights == sorted(heights)


def test_tendermint_idle_skip_suppresses_empty_blocks(env):
    network, nodes = make_cluster(env, 4, prefix="t")
    group = TendermintGroup(
        env, nodes, network,
        config=TendermintConfig(block_interval=0.05,
                                skip_empty_blocks=True),
        rng=RngRegistry(8))
    env.run(until=30)
    # 30 idle seconds: the default mode would commit ~600 empty blocks;
    # idle-skip commits none and schedules nothing while parked.
    assert all(r.commits == 0 for r in group.replicas.values())
    assert all(r.height == 1 for r in group.replicas.values())


def test_tendermint_idle_skip_still_commits_proposals(env):
    network, nodes = make_cluster(env, 4, prefix="t")
    group = TendermintGroup(
        env, nodes, network,
        config=TendermintConfig(block_interval=0.05,
                                skip_empty_blocks=True),
        rng=RngRegistry(8))
    results = []

    def client(env):
        yield env.timeout(5.0)             # a long idle stretch first
        for i in range(6):
            ev = group.propose({"op": i})
            yield ev
            results.append((env.now, ev.value))

    env.process(client(env))
    env.run(until=60)
    assert len(results) == 6
    heights = [h for _t, (h, _item) in results]
    assert heights == sorted(heights)
    # Idle again after the last commit: no further heights were produced.
    assert max(r.height for r in group.replicas.values()) == max(heights) + 1


def test_tendermint_idle_skip_empty_blocks_default_off(env):
    network, nodes = make_cluster(env, 4, prefix="t")
    group = TendermintGroup(env, nodes, network,
                            config=TendermintConfig(block_interval=0.05),
                            rng=RngRegistry(8))
    env.run(until=10)
    # Protocol-faithful default: empty blocks commit on the interval.
    assert max(r.height for r in group.replicas.values()) > 10


# -- chain replication -----------------------------------------------------------------

def test_chain_replication_acks_at_tail(env):
    network, nodes = make_cluster(env, 3, prefix="c")
    chain = ChainReplication(env, nodes, network)
    events = [chain.propose({"op": i}) for i in range(30)]
    env.run(until=10)
    assert all(ev.triggered and ev.ok for ev in events)
    assert chain.commits == 30


def test_chain_replication_order_preserved_at_every_replica(env):
    network, nodes = make_cluster(env, 4, prefix="c")
    chain = ChainReplication(env, nodes, network)
    for i in range(20):
        chain.propose({"op": i})
    env.run(until=10)
    for name, stream in chain.applied.items():
        ops = [item["op"] for _seq, item in stream.get_all()]
        assert ops == list(range(20)), name


def test_chain_head_crash_blocks_writes(env):
    """No automatic failover: the paper's primary-backup weakness."""
    network, nodes = make_cluster(env, 3, prefix="c")
    chain = ChainReplication(env, nodes, network)
    nodes[0].crash()
    ev = chain.propose({"op": 1})
    env.run(until=5)
    assert ev.triggered and not ev.ok


def test_chain_read_at_tail(env):
    network, nodes = make_cluster(env, 3, prefix="c")
    chain = ChainReplication(env, nodes, network)

    def scenario(env):
        yield chain.propose({"op": 1})
        count = yield chain.read()
        return count

    proc = env.process(scenario(env))
    env.run(until=5)
    assert proc.value == 1


# -- shared log / ordering service -------------------------------------------------------

def test_ordering_service_cuts_by_count(env):
    network, nodes = make_cluster(env, 3, prefix="o")
    svc = OrderingService(env, nodes, network,
                          config=SharedLogConfig(block_max_items=5,
                                                 block_timeout=10.0),
                          rng=RngRegistry(11))
    stream = svc.subscribe_local()
    for i in range(15):
        svc.append({"op": i})
    env.run(until=5)
    blocks = stream.get_all()
    assert [len(b["items"]) for b in blocks] == [5, 5, 5]
    assert [b["number"] for b in blocks] == [0, 1, 2]


def test_ordering_service_cuts_by_timeout(env):
    network, nodes = make_cluster(env, 3, prefix="o")
    svc = OrderingService(env, nodes, network,
                          config=SharedLogConfig(block_max_items=100,
                                                 block_timeout=0.3),
                          rng=RngRegistry(12))
    stream = svc.subscribe_local()
    svc.append({"op": 0})
    svc.append({"op": 1})
    env.run(until=2)
    blocks = stream.get_all()
    assert len(blocks) == 1
    assert len(blocks[0]["items"]) == 2


def test_ordering_service_network_delivery(env):
    network, nodes = make_cluster(env, 3, prefix="o")
    peer = Node(env, "peer0")
    network.attach(peer)
    svc = OrderingService(env, nodes, network,
                          config=SharedLogConfig(block_max_items=4,
                                                 block_timeout=0.5),
                          rng=RngRegistry(13))
    svc.subscribe_node("peer0")
    received = []

    def consumer(env):
        inbox = peer.subscribe("deliver")
        while True:
            msg = yield inbox.get()
            received.append(msg.payload)

    env.process(consumer(env))
    for i in range(8):
        svc.append({"op": i})
    env.run(until=5)
    assert sum(len(b["items"]) for b in received) == 8


def test_ordering_preserves_append_order(env):
    network, nodes = make_cluster(env, 3, prefix="o")
    svc = OrderingService(env, nodes, network,
                          config=SharedLogConfig(block_max_items=7,
                                                 block_timeout=0.2),
                          rng=RngRegistry(14))
    stream = svc.subscribe_local()

    def producer(env):
        for i in range(40):
            svc.append(i)
            yield env.timeout(0.001)

    env.process(producer(env))
    env.run(until=5)
    items = [i for b in stream.get_all() for i in b["items"]]
    assert items == list(range(40))
