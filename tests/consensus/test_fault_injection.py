"""Fault-injection tests: partitions, message loss, crash-recover cycles.

The replication protocols must preserve safety (no divergent commits, no
lost committed entries) under every injected fault, and recover liveness
when quorums return.
"""

from repro.consensus.pbft import PbftGroup
from repro.consensus.raft import RaftConfig, RaftGroup
from repro.sim import RngRegistry

from ..conftest import make_cluster


def _committed_ops(replica):
    return [e.item["op"] for e in replica.log[:replica.commit_index]]


def test_raft_survives_message_loss(env):
    network, nodes = make_cluster(env, 3, seed=21)
    group = RaftGroup(env, nodes, network, rng=RngRegistry(21))
    # 20% loss on every link out of the leader
    for node in nodes[1:]:
        network.set_drop_rate(nodes[0].name, node.name, 0.2)
        network.set_drop_rate(node.name, nodes[0].name, 0.2)
    results = []

    def client(env):
        i = 0
        while i < 30:
            leader = group.leader
            if leader is None:
                yield env.timeout(0.2)
                continue
            ev = leader.propose({"op": i})
            yield env.any_of([ev, env.timeout(5.0)])
            if ev.triggered and ev.ok:
                results.append(ev.value)
                i += 1
            else:
                yield env.timeout(0.2)

    env.process(client(env))
    env.run(until=120)
    assert len(results) == 30
    # every replica's committed prefix agrees
    commits = min(r.commit_index for r in group.replicas.values())
    assert commits > 0
    prefixes = {tuple(_committed_ops(r)[:commits])
                for r in group.replicas.values()}
    assert len(prefixes) == 1


def test_raft_crash_recover_cycle(env):
    """A follower that crashes and recovers catches up on the log."""
    network, nodes = make_cluster(env, 3, seed=22)
    group = RaftGroup(env, nodes, network, rng=RngRegistry(22))
    straggler = nodes[1]
    results = []

    def client(env):
        i = 0
        while i < 40:
            leader = group.leader
            if leader is None or leader.node is straggler:
                yield env.timeout(0.2)
                continue
            ev = leader.propose({"op": i})
            yield env.any_of([ev, env.timeout(3.0)])
            if ev.triggered and ev.ok:
                results.append(ev.value)
                i += 1
                if i == 10:
                    straggler.crash()
                if i == 30:
                    straggler.recover()
            else:
                yield env.timeout(0.2)

    env.process(client(env))
    env.run(until=90)
    assert len(results) == 40
    env.run(until=env.now + 10)  # let catch-up finish
    recovered = group.replicas[straggler.name]
    assert recovered.commit_index >= 30  # caught up after recovery


def test_raft_partition_heals_without_divergence(env):
    network, nodes = make_cluster(env, 5, seed=23)
    group = RaftGroup(env, nodes, network, rng=RngRegistry(23))
    results = []

    def client(env):
        i = 0
        while i < 50:
            leader = group.leader
            if leader is None:
                yield env.timeout(0.2)
                continue
            ev = leader.propose({"op": i})
            yield env.any_of([ev, env.timeout(2.0)])
            if ev.triggered and ev.ok:
                results.append(ev.value)
                i += 1
            else:
                yield env.timeout(0.2)

    env.process(client(env))

    def chaos(env):
        yield env.timeout(2.0)
        names = [n.name for n in nodes]
        network.partition(set(names[:2]), set(names[2:]))
        yield env.timeout(8.0)
        network.heal()

    env.process(chaos(env))
    env.run(until=120)
    assert len(results) == 50
    env.run(until=env.now + 15)
    commits = min(r.commit_index for r in group.replicas.values()
                  if not r.node.crashed)
    prefixes = {tuple(_committed_ops(r)[:commits])
                for r in group.replicas.values() if not r.node.crashed}
    assert len(prefixes) == 1
    # committed client results must all be present in the agreed prefix
    agreed = _committed_ops(max(group.replicas.values(),
                                key=lambda r: r.commit_index))
    committed_ops = [item["op"] for _idx, item in results]
    assert set(committed_ops) <= set(agreed)


def test_pbft_message_loss_does_not_break_agreement(env):
    network, nodes = make_cluster(env, 4, seed=24, prefix="p")
    group = PbftGroup(env, nodes, network, rng=RngRegistry(24))
    for a in nodes:
        for b in nodes:
            if a is not b:
                network.set_drop_rate(a.name, b.name, 0.05)
    results = []

    def client(env):
        i = 0
        while i < 20:
            primary = group.primary
            if primary is None:
                yield env.timeout(0.3)
                continue
            ev = primary.propose({"op": i})
            yield env.any_of([ev, env.timeout(5.0)])
            if ev.triggered and ev.ok:
                results.append(ev.value)
                i += 1
            else:
                yield env.timeout(0.3)

    env.process(client(env))
    env.run(until=180)
    assert len(results) == 20
    # executed sequences never diverge between replicas
    seqs = [r.executed_seq for r in group.replicas.values()]
    assert max(seqs) - min(seqs) <= 2  # transient lag only
