"""PBFT tests: normal case, view change, Byzantine equivocation safety."""

from repro.consensus.pbft import PbftConfig, PbftGroup
from repro.sim import RngRegistry

from ..conftest import make_cluster


def make_group(env, n, seed=1, byzantine=None, **config_kw):
    network, nodes = make_cluster(env, n, seed=seed, prefix="p")
    group = PbftGroup(env, nodes, network,
                      config=PbftConfig(**config_kw) if config_kw else None,
                      rng=RngRegistry(seed), byzantine=byzantine)
    return group, network, nodes


def drive(env, group, count, results):
    def client(env):
        i = 0
        while i < count:
            primary = group.primary
            if primary is None:
                yield env.timeout(0.2)
                continue
            ev = primary.propose({"op": i})
            yield env.any_of([ev, env.timeout(4.0)])
            if ev.triggered and ev.ok:
                results.append(ev.value)
                i += 1
            else:
                yield env.timeout(0.2)
    env.process(client(env))


def test_normal_case_commits(env):
    group, _net, _nodes = make_group(env, 4)
    results = []
    drive(env, group, 40, results)
    env.run(until=20)
    assert len(results) == 40
    assert all(r.executed_seq >= 1 for r in group.replicas.values())


def test_replicas_execute_same_sequence(env):
    group, _net, _nodes = make_group(env, 4)
    results = []
    drive(env, group, 30, results)
    env.run(until=20)
    seqs = set(group.executed_sequences().values())
    assert len(seqs) == 1


def test_sequences_execute_in_order(env):
    group, _net, _nodes = make_group(env, 7)
    results = []
    drive(env, group, 30, results)
    env.run(until=30)
    seq_numbers = [seq for seq, _items in results]
    assert seq_numbers == sorted(seq_numbers)


def test_propose_to_backup_fails(env):
    group, _net, _nodes = make_group(env, 4)
    env.run(until=0.5)
    backup = next(r for r in group.replicas.values() if not r.is_primary)
    ev = backup.propose({"op": 0})
    assert ev.triggered and not ev.ok


def test_primary_crash_causes_view_change_and_progress(env):
    group, _net, _nodes = make_group(env, 4, seed=2)
    results = []

    def client(env):
        i = 0
        while i < 30:
            primary = group.primary
            if primary is None:
                yield env.timeout(0.3)
                continue
            ev = primary.propose({"op": i})
            yield env.any_of([ev, env.timeout(4.0)])
            if ev.triggered and ev.ok:
                results.append(ev.value)
                i += 1
                if i == 15:
                    primary.node.crash()
            else:
                yield env.timeout(0.3)

    env.process(client(env))
    env.run(until=80)
    assert len(results) == 30
    live_views = {r.view for r in group.replicas.values()
                  if not r.node.crashed}
    assert max(live_views) >= 1  # a view change happened


def test_f_crashes_tolerated_with_3f_plus_1(env):
    group, _net, nodes = make_group(env, 7, seed=3)  # f = 2
    results = []
    # crash two backups immediately
    backups = [r for r in group.replicas.values() if not r.is_primary]
    backups[0].node.crash()
    backups[1].node.crash()
    drive(env, group, 20, results)
    env.run(until=30)
    assert len(results) == 20


def test_f_plus_1_crashes_block_progress(env):
    group, _net, _nodes = make_group(env, 4, seed=4)  # f = 1
    backups = [r for r in group.replicas.values() if not r.is_primary]
    backups[0].node.crash()
    backups[1].node.crash()  # f+1 = 2 failures
    results = []
    drive(env, group, 5, results)
    env.run(until=15)
    assert len(results) == 0


def test_equivocating_primary_cannot_cause_divergent_commits(env):
    """A Byzantine primary sending conflicting pre-prepares must not get
    two different batches committed at the same sequence number."""
    group, _net, nodes = make_group(env, 4, seed=5,
                                    byzantine={"p0"})
    evil = group.replicas["p0"]
    for i in range(10):
        evil.propose({"op": i})
    env.run(until=10)
    honest = [r for r in group.replicas.values() if r.name != "p0"]
    # No sequence may commit two different digests: by construction the
    # equivocator uses digests 'evil-a'/'evil-b'; each needs 2f+1 = 3
    # votes out of 4 replicas, and honest replicas prepare only the first
    # pre-prepare they see — so at most one can commit, or none.
    executed = {r.name: r.executed_seq for r in honest}
    # all honest replicas that executed anything executed the same batches
    assert len({r.executed_seq for r in honest}) <= 2
    for seq in range(1, max(executed.values()) + 1):
        digests = set()
        for r in honest:
            batch = r._batches.get(seq)
            if batch is not None and batch.get("committed"):
                digests.add(batch["digest"])
        assert len(digests) <= 1, f"conflicting commits at seq {seq}"


def test_quorum_math_matches_f(env):
    group, _net, _nodes = make_group(env, 10)  # f = 3
    replica = next(iter(group.replicas.values()))
    assert replica.f == 3
    assert replica.quorum == 7
