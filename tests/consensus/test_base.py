"""Tests for the quorum arithmetic of Section 3.1.3."""

import pytest

from repro.consensus.base import (FailureModel, NetworkModel,
                                  max_tolerated_failures, quorum_size,
                                  replicas_required)


def test_cft_async_needs_2f_plus_1():
    assert replicas_required(1, FailureModel.CRASH) == 3
    assert replicas_required(2, FailureModel.CRASH) == 5


def test_cft_sync_needs_f_plus_1():
    assert replicas_required(
        2, FailureModel.CRASH, NetworkModel.SYNCHRONOUS) == 3


def test_bft_async_needs_3f_plus_1():
    assert replicas_required(1, FailureModel.BYZANTINE) == 4
    assert replicas_required(3, FailureModel.BYZANTINE) == 10


def test_bft_sync_needs_2f_plus_1():
    assert replicas_required(
        3, FailureModel.BYZANTINE, NetworkModel.SYNCHRONOUS) == 7


def test_negative_f_rejected():
    with pytest.raises(ValueError):
        replicas_required(-1, FailureModel.CRASH)


def test_max_tolerated_inverse_of_required():
    for f in range(0, 6):
        for fm in FailureModel:
            n = replicas_required(f, fm)
            assert max_tolerated_failures(n, fm) == f


def test_quorum_sizes():
    assert quorum_size(3, FailureModel.CRASH) == 2
    assert quorum_size(5, FailureModel.CRASH) == 3
    assert quorum_size(4, FailureModel.BYZANTINE) == 3   # 2f+1, f=1
    assert quorum_size(7, FailureModel.BYZANTINE) == 5   # 2f+1, f=2


def test_quorum_intersection_property():
    """Two CFT quorums always intersect; two BFT quorums intersect in at
    least f+1 replicas (so one correct replica is in both)."""
    for n in range(3, 20):
        q = quorum_size(n, FailureModel.CRASH)
        assert 2 * q > n
    for f in range(1, 6):
        n = 3 * f + 1
        q = quorum_size(n, FailureModel.BYZANTINE)
        assert 2 * q - n >= f + 1
