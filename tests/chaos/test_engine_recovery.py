"""Crash-restart recovery closes the loop on every storage engine.

The contract: after ``crash()`` (unsynced WAL tail lost) and
``recover()`` (fresh structure, full WAL replay, one commit), the engine
serves exactly the pre-crash *synced* state — for authenticated engines,
byte-identical state roots.
"""

import pytest

from repro.storage.engine import engine_for

ENGINE_KINDS = ["lsm", "btree", "skiplist", "lsm+mpt", "lsm+mbt",
                "btree+merkle"]


@pytest.fixture(params=ENGINE_KINDS)
def engine(request):
    return engine_for(request.param, wal=True)


def _fill(engine, n, tag):
    for i in range(n):
        engine.put(f"k{i:04d}", f"{tag}:{i}".encode())


class TestRecoveryEquivalence:
    def test_recovery_restores_synced_state(self, engine):
        engine.wal_checkpoint_bytes = None    # keep history replayable
        _fill(engine, 50, "v1")
        pre = engine.commit()                 # synced through here
        committed = {f"k{i:04d}": f"v1:{i}".encode() for i in range(50)}
        engine.put("k0001", b"UNSYNCED")      # journaled, never synced

        engine.crash()
        rec = engine.recover()
        assert rec.records == 50              # the unsynced put is gone
        for key, value in committed.items():
            assert engine.get(key) == value
        assert engine.recoveries == 1
        assert rec.root == pre.root           # authenticated root restored

    def test_unsynced_tail_is_lost(self, engine):
        engine.wal_checkpoint_bytes = None
        _fill(engine, 10, "v1")
        engine.commit()
        engine.put("k0003", b"DIRTY")         # unsynced overwrite
        engine.crash()
        engine.recover()
        assert engine.get("k0003") == b"v1:3"

    def test_replay_continues_wal_sequence(self, engine):
        engine.wal_checkpoint_bytes = None
        _fill(engine, 5, "v1")
        engine.commit()
        engine.crash()
        engine.recover()
        engine.put("k9999", b"after")
        engine.commit()
        engine.crash()
        rec = engine.recover()
        assert rec.records == 6
        assert engine.get("k9999") == b"after"
