"""Invariant-checked chaos runs: one test per declarative step type.

Each test drives a full system through a fault schedule with the standard
invariant suite armed (no ledger fork, prefix consistency, SmallBank
conservation, liveness after heal) and asserts both that the fault
demonstrably fired (injection log / protocol counters) and that the
invariants held.
"""

import pytest

from repro.chaos import (AsymPartition, Censor, ClockSkew, CrashRestart,
                         Equivocate, GrayNode, LeaderChurn, Partition,
                         Scenario, ShardSplit, SilentLeader,
                         run_chaos_point)

ETCD_MINORITY = ("etcd1",)
ETCD_MAJORITY = ("etcd0", "etcd2", "etcd3", "etcd4")


def _assert_clean(result):
    assert result.ok, f"invariant violations: {result.violations}"
    assert result.checks > 0            # the continuous checker really ran
    assert result.run.tps > 0


class TestPartitions:
    def test_symmetric_partition_heals(self):
        scen = Scenario(
            name="etcd-minority-partition",
            steps=(Partition(at=1.0, group_a=ETCD_MINORITY,
                             group_b=ETCD_MAJORITY, until=3.0),),
            settle=3.0)
        res = run_chaos_point("etcd", scen, seed=11, extras={"wal": True})
        _assert_clean(res)
        assert any("partition" in line for line in res.injection_log)
        assert any("heal" in line for line in res.injection_log)
        # the network is actually clean again after the heal
        assert not res.extras["system"].network._partitions

    def test_asymmetric_partition(self):
        scen = Scenario(
            name="etcd-asym-partition",
            steps=(AsymPartition(at=1.0, group_a=("etcd0",),
                                 group_b=ETCD_MAJORITY[1:], until=3.0),),
            settle=4.0)
        res = run_chaos_point("etcd", scen, seed=11, extras={"wal": True})
        _assert_clean(res)
        assert any("->" in line and "<->" not in line
                   for line in res.injection_log)


class TestGrayNode:
    def test_slow_lossy_node_does_not_break_safety(self):
        scen = Scenario(
            name="etcd-gray-follower",
            steps=(GrayNode(at=1.0, node="etcd2", extra_delay=0.002,
                            drop_rate=0.1, until=3.0),),
            settle=3.0)
        res = run_chaos_point("etcd", scen, seed=11, extras={"wal": True})
        _assert_clean(res)
        net = res.extras["system"].network
        assert not net._link_delay          # healed without residue
        assert any("gray etcd2" in line for line in res.injection_log)


class TestCrashRestart:
    def test_engine_host_recovers_by_wal_replay(self):
        scen = Scenario(
            name="etcd-crash-engine-host",
            steps=(CrashRestart(at=2.0, node="etcd0", restart_at=3.0),),
            settle=4.0)
        res = run_chaos_point("etcd", scen, seed=11, extras={"wal": True})
        _assert_clean(res)
        engine = res.extras["system"].engine
        assert engine.recoveries == 1
        replayed = [l for l in res.injection_log if "replayed" in l]
        assert len(replayed) == 1
        # genesis survives recovery: 200 accounts x 2 records at minimum
        assert "replayed" in replayed[0]
        assert engine.wal_checkpoint_bytes is None   # truncation disabled

    def test_crash_without_wal_rejected_at_arm_time(self):
        scen = Scenario(
            name="etcd-crash-no-wal",
            steps=(CrashRestart(at=2.0, node="etcd0", restart_at=3.0),))
        with pytest.raises(ValueError, match="requires a WAL"):
            run_chaos_point("etcd", scen, seed=11)


class TestLeaderChurn:
    def test_rolling_leader_kills(self):
        scen = Scenario(
            name="etcd-leader-churn",
            steps=(LeaderChurn(at=1.0, until=7.0, period=2.0,
                               downtime=0.5),),
            settle=5.0)
        res = run_chaos_point("etcd", scen, seed=11, extras={"wal": True})
        _assert_clean(res)
        crashes = [l for l in res.injection_log if l.split()[1] == "crash"]
        assert len(crashes) >= 1            # at least the bootstrap leader
        assert any("churn window closed" in l for l in res.injection_log)


class TestClockSkew:
    def test_skew_stretches_spanner_commit_wait(self):
        def point(skew):
            scen = Scenario(
                name=f"spanner-skew-{skew:g}",
                steps=(ClockSkew(at=0.5, node="spanner-leader0",
                                 skew=skew, until=5.5),),
                settle=1.0)
            return run_chaos_point("spanner", scen, seed=11, num_nodes=3)

        baseline = point(0.0)
        skewed = point(0.05)
        _assert_clean(baseline)
        _assert_clean(skewed)
        # every commit through the skewed shard leader waits out the
        # inflated uncertainty: with one shard, mean latency shifts by
        # nearly the full skew
        assert (skewed.run.mean_latency
                > baseline.run.mean_latency + 0.02)


class TestShardSplit:
    SCEN = Scenario(name="ahl-mid-run-split",
                    steps=(ShardSplit(at=0.5),), settle=1.0)

    def test_mid_run_split_fires_and_run_stays_clean(self):
        res = run_chaos_point("ahl", self.SCEN, seed=11, num_nodes=6,
                              workload="ycsb",
                              system_kwargs={"hot_split": True})
        _assert_clean(res)
        split_lines = [l for l in res.injection_log if "shard-split" in l]
        assert len(split_lines) == 1
        partitioner = res.extras["system"].partitioner
        assert len(partitioner.splits) == 1
        entry = partitioner.splits[0]
        assert entry["to_shard"] != entry["from_shard"]
        # Same-seed rerun replays the split byte-for-byte.
        again = run_chaos_point("ahl", self.SCEN, seed=11, num_nodes=6,
                                workload="ycsb",
                                system_kwargs={"hot_split": True})
        assert again.digest() == res.digest()

    def test_split_without_load_aware_partitioner_rejected(self):
        with pytest.raises(ValueError, match="load-aware partitioner"):
            run_chaos_point("ahl", self.SCEN, seed=11, num_nodes=6,
                            workload="ycsb")


class TestByzantine:
    def test_silent_leader_voted_out_and_progress_resumes(self):
        scen = Scenario(
            name="quorum-silent-leader",
            steps=(SilentLeader(at=1.0, until=5.0),),
            settle=6.0)
        res = run_chaos_point("quorum", scen, seed=11,
                              system_kwargs={"consensus": "ibft"})
        _assert_clean(res)
        group = res.extras["system"].group
        assert all(r.view >= 1 for r in group.replicas.values())
        assert group.replicas["quorum0"].silenced_count >= 1

    def test_censoring_primary_blocks_then_releases(self):
        scen = Scenario(
            name="quorum-censor-all",
            steps=(Censor(at=1.0, match="", until=5.0),),
            settle=6.0)
        res = run_chaos_point("quorum", scen, seed=11,
                              system_kwargs={"consensus": "ibft"})
        _assert_clean(res)
        primary = res.extras["system"].group.replicas["quorum0"]
        assert primary.censored_count >= 1
        assert primary.censor_predicate is None     # window closed
        assert any("released" in l for l in res.injection_log)

    def test_equivocating_primary_cannot_fork(self):
        # Equivocation wedges the sequence it poisons (the conflicting
        # digests never reach a common quorum, and the primary looks
        # live), so this scenario checks *safety only*.
        scen = Scenario(
            name="quorum-equivocate",
            steps=(Equivocate(at=1.0, until=3.0),),
            settle=3.0, expect_liveness=False)
        res = run_chaos_point("quorum", scen, seed=11,
                              system_kwargs={"consensus": "ibft"})
        assert res.ok, f"safety violated: {res.violations}"
        group = res.extras["system"].group
        # no two replicas executed different items at any common sequence
        replicas = list(group.replicas.values())
        common = min(r.executed_seq for r in replicas)
        for seq in range(1, common + 1):
            items = {id(r._history[seq]) for r in replicas
                     if seq in r._history}
            assert len(items) <= 1
