"""Scenario DSL: validation, timing, canonical fingerprints."""

import pytest

from repro.chaos import (AsymPartition, Censor, ClockSkew, CrashRestart,
                         Equivocate, GrayNode, LeaderChurn, Partition,
                         Scenario, ShardSplit, SilentLeader, STEP_KINDS)


def _scen(*steps, **kw):
    return Scenario(name="t", steps=tuple(steps), **kw)


class TestStepValidation:
    def test_negative_at_rejected(self):
        with pytest.raises(ValueError, match="at must be"):
            _scen(Partition(at=-1.0, group_a=("a",), group_b=("b",)))

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError, match="until must be > at"):
            _scen(Partition(at=2.0, group_a=("a",), group_b=("b",),
                            until=2.0))

    def test_partition_groups_required(self):
        with pytest.raises(ValueError, match="non-empty"):
            _scen(Partition(at=0.0, group_a=(), group_b=("b",)))

    def test_gray_drop_rate_range(self):
        with pytest.raises(ValueError, match="drop_rate"):
            _scen(GrayNode(at=0.0, node="a", drop_rate=1.0))

    def test_crash_restart_ordering(self):
        with pytest.raises(ValueError, match="restart_at"):
            _scen(CrashRestart(at=3.0, node="a", restart_at=3.0))

    def test_churn_downtime_below_period(self):
        with pytest.raises(ValueError, match="downtime"):
            _scen(LeaderChurn(at=0.0, until=10.0, period=1.0, downtime=1.0))

    def test_negative_skew_rejected(self):
        with pytest.raises(ValueError, match="skew"):
            _scen(ClockSkew(at=0.0, node="a", skew=-0.01))

    def test_empty_scenario_rejected(self):
        with pytest.raises(ValueError, match="at least one step"):
            Scenario(name="empty", steps=())


class TestTiming:
    def test_end_time_is_last_heal(self):
        s = _scen(
            Partition(at=1.0, group_a=("a",), group_b=("b",), until=4.0),
            CrashRestart(at=2.0, node="a", restart_at=6.0),
            ClockSkew(at=3.0, node="b", skew=0.01),   # instant (no until)
        )
        assert s.end_time == 6.0
        assert s.horizon == 6.0 + s.settle

    def test_unbounded_window_ends_at_start(self):
        s = _scen(Partition(at=2.0, group_a=("a",), group_b=("b",)))
        assert s.end_time == 2.0


class TestFingerprint:
    def test_all_step_kinds_expressible(self):
        """Every fault class has a declarative, fingerprintable form."""
        steps = (
            Partition(at=0.5, group_a=("n0",), group_b=("n1", "n2"),
                      until=1.0),
            AsymPartition(at=1.5, group_a=("n0",), group_b=("n1",),
                          until=2.0),
            GrayNode(at=2.5, node="n1", extra_delay=0.003, drop_rate=0.1,
                     until=3.0),
            CrashRestart(at=3.5, node="n2", restart_at=4.0),
            LeaderChurn(at=4.5, until=6.5, period=1.0, downtime=0.2),
            ClockSkew(at=7.0, node="n0", skew=0.02, until=8.0),
            Equivocate(at=8.5, until=9.0),
            Censor(at=9.5, match="checking", until=10.0),
            SilentLeader(at=10.5, until=11.0),
            ShardSplit(at=11.5),
        )
        assert len(STEP_KINDS) == 10
        assert {type(s) for s in steps} == set(STEP_KINDS)
        s = Scenario(name="all-kinds", steps=steps)
        fp = s.fingerprint()
        assert fp == s.fingerprint()          # stable
        assert len(fp) == 64
        for step in steps:
            assert type(step).__name__ in s.canonical()

    def test_fingerprint_sensitive_to_schedule(self):
        a = _scen(CrashRestart(at=1.0, node="n0", restart_at=2.0))
        b = _scen(CrashRestart(at=1.0, node="n0", restart_at=2.5))
        assert a.fingerprint() != b.fingerprint()
