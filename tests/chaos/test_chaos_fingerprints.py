"""Determinism gate for chaos runs.

A seeded chaos run must be byte-identical across repetitions: same
injection log, same measured floats, same invariant verdicts — hence the
same :meth:`ChaosResult.digest`.  Three scenarios across three systems
and fault families keep the gate broad.  The scenarios and their pinned
digests live in :mod:`repro.bench.fingerprints` so the multiprocess
sweep runner re-verifies the same pins.
"""

import pytest

from repro.bench.fingerprints import CHAOS_DIGESTS, CHAOS_SCENARIOS
from repro.chaos import run_chaos_point

SCENARIOS = CHAOS_SCENARIOS


def test_registry_shape():
    assert set(CHAOS_DIGESTS) == {"etcd-storm", "etcd-churn",
                                  "quorum-censor"}
    assert set(SCENARIOS.keys()) == set(CHAOS_DIGESTS)


@pytest.mark.parametrize("name", sorted(CHAOS_DIGESTS))
def test_chaos_digest_repeats_byte_identical(name):
    spec = SCENARIOS[name]
    results = [run_chaos_point(spec["system"], spec["scenario"], seed=11,
                               **spec["kwargs"]) for _ in range(2)]
    first, second = results
    assert first.injection_log == second.injection_log
    assert first.violations == second.violations
    assert repr(first.run.tps) == repr(second.run.tps)
    assert first.digest() == second.digest()
    assert first.digest() == CHAOS_DIGESTS[name], \
        f"pinned chaos digest drifted for {name}"
    assert first.ok, f"violations: {first.violations}"


def test_digest_covers_the_schedule():
    spec = SCENARIOS["etcd-storm"]
    res = run_chaos_point(spec["system"], spec["scenario"], seed=11,
                          **spec["kwargs"])
    assert res.scenario_fingerprint == spec["scenario"].fingerprint()
    assert res.invariant_names == ("no-ledger-fork", "prefix-consistency",
                                   "liveness-after-heal",
                                   "conserved-balances")
