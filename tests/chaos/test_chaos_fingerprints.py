"""Determinism gate for chaos runs.

A seeded chaos run must be byte-identical across repetitions: same
injection log, same measured floats, same invariant verdicts — hence the
same :meth:`ChaosResult.digest`.  Three scenarios across three systems
and fault families keep the gate broad.
"""

import pytest

from repro.chaos import (Censor, CrashRestart, GrayNode, LeaderChurn,
                         Partition, Scenario, run_chaos_point)

SCENARIOS = {
    "etcd-storm": dict(
        system="etcd",
        scenario=Scenario(
            name="etcd-storm",
            steps=(
                Partition(at=1.0, group_a=("etcd1",),
                          group_b=("etcd0", "etcd2", "etcd3", "etcd4"),
                          until=2.5),
                GrayNode(at=3.0, node="etcd2", extra_delay=0.002,
                         drop_rate=0.05, until=4.0),
                CrashRestart(at=4.5, node="etcd0", restart_at=5.5),
            ),
            settle=2.5),
        kwargs=dict(extras={"wal": True})),
    "etcd-churn": dict(
        system="etcd",
        scenario=Scenario(
            name="etcd-churn",
            steps=(LeaderChurn(at=1.0, until=5.0, period=2.0,
                               downtime=0.5),),
            settle=3.0),
        kwargs=dict(extras={"wal": True})),
    "quorum-censor": dict(
        system="quorum",
        scenario=Scenario(
            name="quorum-censor",
            steps=(Censor(at=1.0, match="", until=4.0),),
            settle=4.0),
        kwargs=dict(system_kwargs={"consensus": "ibft"})),
}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_chaos_digest_repeats_byte_identical(name):
    spec = SCENARIOS[name]
    results = [run_chaos_point(spec["system"], spec["scenario"], seed=11,
                               **spec["kwargs"]) for _ in range(2)]
    first, second = results
    assert first.injection_log == second.injection_log
    assert first.violations == second.violations
    assert repr(first.run.tps) == repr(second.run.tps)
    assert first.digest() == second.digest()
    assert first.ok, f"violations: {first.violations}"


def test_digest_covers_the_schedule():
    spec = SCENARIOS["etcd-storm"]
    res = run_chaos_point(spec["system"], spec["scenario"], seed=11,
                          **spec["kwargs"])
    assert res.scenario_fingerprint == spec["scenario"].fingerprint()
    assert res.invariant_names == ("no-ledger-fork", "prefix-consistency",
                                   "liveness-after-heal",
                                   "conserved-balances")
