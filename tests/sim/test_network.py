"""Tests for the simulated network."""

import pytest

from repro.sim import Environment, Message, Network, Node, RngRegistry


def test_delivery_includes_latency_and_transfer(env, cluster):
    network, nodes = cluster
    src, dst = nodes[0], nodes[1]
    got = []

    def receiver(env):
        msg = yield dst.receive()
        got.append((env.now, msg.payload))

    env.process(receiver(env))
    network.send(Message(src=src.name, dst=dst.name, kind="x",
                         payload="hi", size=125_000))  # 1ms transfer
    env.run()
    assert got and got[0][1] == "hi"
    costs = network.costs
    expected = costs.net_send_overhead + 125_000 / costs.net_bandwidth \
        + costs.net_latency
    assert got[0][0] == pytest.approx(expected)


def test_unknown_endpoint_raises(env, cluster):
    network, _nodes = cluster
    network.send(Message(src="n0", dst="ghost", kind="x"))
    with pytest.raises(KeyError):
        env.run()


def test_duplicate_node_name_rejected(env, cluster):
    network, nodes = cluster
    with pytest.raises(ValueError):
        network.attach(Node(env, nodes[0].name))


def test_partition_blocks_and_heal_restores(env, cluster):
    network, nodes = cluster
    got = []

    def receiver(env):
        while True:
            msg = yield nodes[1].receive()
            got.append(msg.payload)

    env.process(receiver(env))
    network.partition({"n0"}, {"n1"})
    network.send(Message(src="n0", dst="n1", kind="x", payload="lost"))
    env.run()
    assert got == []
    assert network.messages_dropped == 1
    network.heal()
    network.send(Message(src="n0", dst="n1", kind="x", payload="found"))
    env.run()
    assert got == ["found"]


def test_partition_is_bidirectional(env, cluster):
    network, nodes = cluster
    network.partition({"n0"}, {"n1"})
    network.send(Message(src="n1", dst="n0", kind="x", payload="back"))
    env.run()
    assert network.messages_dropped == 1


def test_partition_does_not_affect_other_pairs(env, cluster):
    network, nodes = cluster
    got = []

    def receiver(env):
        msg = yield nodes[2].receive()
        got.append(msg.payload)

    env.process(receiver(env))
    network.partition({"n0"}, {"n1"})
    network.send(Message(src="n0", dst="n2", kind="x", payload="ok"))
    env.run()
    assert got == ["ok"]


def test_crashed_destination_discards(env, cluster):
    network, nodes = cluster
    nodes[1].crash()
    network.send(Message(src="n0", dst="n1", kind="x", payload="gone"))
    env.run()
    assert network.messages_dropped == 1


def test_crashed_source_discards(env, cluster):
    network, nodes = cluster
    nodes[0].crash()
    network.send(Message(src="n0", dst="n1", kind="x", payload="gone"))
    env.run()
    assert network.messages_dropped == 1


def test_drop_rate_drops_some_messages(env, cluster):
    network, nodes = cluster
    network.set_drop_rate("n0", "n1", 0.5)
    received = []

    def receiver(env):
        while True:
            msg = yield nodes[1].receive()
            received.append(msg)

    env.process(receiver(env))
    for _ in range(200):
        network.send(Message(src="n0", dst="n1", kind="x"))
    env.run()
    assert 0 < len(received) < 200
    assert len(received) + network.messages_dropped == 200


def test_broadcast_excludes_source(env, cluster):
    network, nodes = cluster
    counts = {n.name: 0 for n in nodes}

    def receiver(env, node):
        while True:
            yield node.receive()
            counts[node.name] += 1

    for node in nodes:
        env.process(receiver(env, node))
    network.broadcast("n0", [n.name for n in nodes], "x", payload=1)
    env.run()
    assert counts == {"n0": 0, "n1": 1, "n2": 1, "n3": 1}


def test_nic_serializes_egress(env, cluster):
    """Two large sends from one node must serialize on its NIC."""
    network, nodes = cluster
    arrivals = []

    def receiver(env, node):
        msg = yield node.receive()
        arrivals.append(env.now)

    env.process(receiver(env, nodes[1]))
    env.process(receiver(env, nodes[2]))
    size = 1_250_000  # 10 ms transfer each
    network.send(Message(src="n0", dst="n1", kind="x", size=size))
    network.send(Message(src="n0", dst="n2", kind="x", size=size))
    env.run()
    assert len(arrivals) == 2
    # second arrival is ~one transfer time after the first
    assert arrivals[1] - arrivals[0] == pytest.approx(
        0.01 + network.costs.net_send_overhead, rel=0.01)


def test_subscribed_kind_routes_to_dedicated_inbox(env, cluster):
    network, nodes = cluster
    inbox = nodes[1].subscribe("special")
    got = []

    def consumer(env):
        msg = yield inbox.get()
        got.append(msg.kind)

    env.process(consumer(env))
    network.send(Message(src="n0", dst="n1", kind="special", payload=1))
    env.run()
    assert got == ["special"]


def test_jitter_changes_delivery_times():
    env = Environment()
    network = Network(env, rng=RngRegistry(5), jitter=0.01)
    a, b = Node(env, "a"), Node(env, "b")
    network.attach(a)
    network.attach(b)
    arrivals = []

    def receiver(env):
        while True:
            yield b.receive()
            arrivals.append(env.now)

    env.process(receiver(env))
    for i in range(10):
        network.send(Message(src="a", dst="b", kind="x", size=16))
    env.run()
    gaps = {round(t, 9) for t in arrivals}
    assert len(gaps) > 1  # jitter desynchronizes identical sends
