"""Tests for the simulated node."""

from repro.sim import Environment, Message, Node


def test_compute_occupies_cores(env):
    node = Node(env, "n", cores=2)
    finished = []

    def worker(env, name):
        yield node.compute(1.0)
        finished.append((env.now, name))

    for i in range(4):
        env.process(worker(env, i))
    env.run()
    # 4 jobs of 1 s on 2 cores: finish at t=1 (x2) and t=2 (x2)
    times = sorted(t for t, _ in finished)
    assert times == [1.0, 1.0, 2.0, 2.0]


def test_disk_is_serialized(env):
    node = Node(env, "n")
    finished = []

    def writer(env):
        yield node.disk_write(0.5)
        finished.append(env.now)

    env.process(writer(env))
    env.process(writer(env))
    env.run()
    assert finished == [0.5, 1.0]


def test_generator_forms_still_serve(env):
    node = Node(env, "n", cores=1)
    finished = []

    def worker(env):
        yield from node.compute_gen(1.0)
        yield from node.disk_write_gen(0.5)
        finished.append(env.now)

    env.process(worker(env))
    env.process(worker(env))
    env.run()
    # serial core then serial disk: 1.5 and 2.5 (disk overlaps 2nd compute)
    assert finished == [1.5, 2.5]


def test_subscribe_routes_by_kind(env):
    node = Node(env, "n")
    special = node.subscribe("special")
    node.enqueue(Message(src="a", dst="n", kind="special", payload=1))
    node.enqueue(Message(src="a", dst="n", kind="other", payload=2))
    assert len(special) == 1
    assert len(node.mailbox) == 1


def test_subscribe_same_kind_returns_same_inbox(env):
    node = Node(env, "n")
    assert node.subscribe("x") is node.subscribe("x")


def test_crash_and_recover_flags(env):
    node = Node(env, "n")
    assert not node.crashed
    node.crash()
    assert node.crashed
    node.recover()
    assert not node.crashed


def test_nic_capacity_parallelism(env):
    node = Node(env, "n", nic_capacity=4)
    finished = []

    def sender(env):
        yield from node.nic_out.serve(1.0)
        finished.append(env.now)

    for _ in range(4):
        env.process(sender(env))
    env.run()
    assert finished == [1.0] * 4  # all four concurrently
