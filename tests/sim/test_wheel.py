"""Tests for the hierarchical timing wheel."""

import pytest

from repro.sim import Environment, TimingWheel
from repro.sim.kernel import SimulationError


def _collector(env):
    fired = []

    def cb(tag):
        fired.append((env.now, tag))

    return fired, cb


def test_exact_time_dispatch(env):
    wheel = TimingWheel(env, tick=0.01, slots=8, levels=2)
    fired, cb = _collector(env)
    # Deliberately ugly floats that do not sit on tick boundaries.
    times = [0.0137, 0.1031, 0.0412, 0.0999, 0.2501]
    for i, t in enumerate(times):
        wheel.schedule(t, cb, i)
    env.run(until=1.0)
    assert fired == sorted((t, i) for i, t in enumerate(times))
    assert wheel.pending == 0


def test_same_slot_orders_by_when_then_seq(env):
    wheel = TimingWheel(env, tick=0.01, slots=8, levels=2)
    fired, cb = _collector(env)
    # All three land in the same level-0 slot; two share an instant.
    wheel.schedule(0.0309, cb, "late")
    wheel.schedule(0.0301, cb, "first")
    wheel.schedule(0.0301, cb, "second")
    env.run(until=1.0)
    assert [tag for _, tag in fired] == ["first", "second", "late"]


def test_due_now_bypasses_wheel(env):
    wheel = TimingWheel(env, tick=0.01, slots=8, levels=2)
    fired, cb = _collector(env)
    entry = wheel.schedule(env.now, cb, "now")
    assert entry is None          # kernel-direct: not cancellable
    assert wheel.pending == 0
    env.run(until=0.1)
    assert fired == [(0.0, "now")]


def test_past_schedule_raises(env):
    wheel = TimingWheel(env, tick=0.01, slots=8, levels=2)
    env.run(until=0.5)
    with pytest.raises(SimulationError):
        wheel.schedule(0.1, lambda _: None)


def test_cancel_is_effective_and_idempotent(env):
    wheel = TimingWheel(env, tick=0.01, slots=8, levels=2)
    fired, cb = _collector(env)
    keep = wheel.schedule(0.05, cb, "keep")
    drop = wheel.schedule(0.05, cb, "drop")
    assert wheel.pending == 2
    assert wheel.cancel(drop) is True
    assert wheel.cancel(drop) is False     # second cancel is a no-op
    assert wheel.pending == 1
    env.run(until=1.0)
    assert [tag for _, tag in fired] == ["keep"]
    assert wheel.cancel(keep) is False     # already fired
    assert wheel.cancel(None) is False


def test_multi_level_cascade_and_far_list(env):
    # slots=4, levels=2: level 0 spans 4 ticks, level 1 spans 16,
    # everything past 16 ticks waits in the far list.
    wheel = TimingWheel(env, tick=0.01, slots=4, levels=2)
    fired, cb = _collector(env)
    times = {
        "level0": 0.02,     # tick 2
        "level1": 0.09,     # tick 9: cascades at tick 8
        "far": 0.55,        # tick 55: far list, refiled at tick 16/32/48
        "far2": 0.17,       # tick 17: filed far, refiled at tick 16
    }
    for tag, t in times.items():
        wheel.schedule(t, cb, tag)
    assert len(wheel._far) == 2
    env.run(until=1.0)
    assert fired == sorted((t, tag) for tag, t in times.items())
    assert wheel.pending == 0
    assert not wheel._far


def test_cancelled_far_entry_not_refiled(env):
    wheel = TimingWheel(env, tick=0.01, slots=4, levels=2)
    fired, cb = _collector(env)
    far = wheel.schedule(0.55, cb, "far")
    wheel.schedule(0.6, cb, "kept")
    assert wheel.cancel(far)
    env.run(until=1.0)
    assert [tag for _, tag in fired] == ["kept"]


def test_idle_disarm_and_rearm_after_gap(env):
    wheel = TimingWheel(env, tick=0.01, slots=8, levels=2)
    fired, cb = _collector(env)
    wheel.schedule(0.03, cb, "a")
    env.run(until=5.0)
    assert fired == [(0.03, "a")]
    assert wheel._timer is None or not wheel._timer.active
    # Re-arm long after going idle: _cur must fast-forward, not replay
    # five hundred stale ticks.
    wheel.schedule(5.04, cb, "b")
    env.run(until=6.0)
    assert fired[-1] == (5.04, "b")
    assert wheel.pending == 0


def test_near_entry_reaims_armed_metronome(env):
    wheel = TimingWheel(env, tick=0.01, slots=8, levels=3)
    fired, cb = _collector(env)
    wheel.schedule(3.0, cb, "far")         # metronome aimed far out
    wheel.schedule(0.02, cb, "near")       # must fire first regardless
    env.run(until=0.1)
    assert fired == [(0.02, "near")]
    env.run(until=4.0)
    assert fired == [(0.02, "near"), (3.0, "far")]


def test_interleaves_deterministically_with_kernel_timers(env):
    wheel = TimingWheel(env, tick=0.01, slots=8, levels=2)
    fired, cb = _collector(env)
    t = env.timeout(0.0450, value="kernel")
    t.callbacks.append(lambda ev: fired.append((env.now, ev._value)))
    wheel.schedule(0.0450, cb, "wheel")
    env.run(until=1.0)
    # Identical instants: the kernel timer was scheduled first and the
    # wheel drains through the same priority lane, so kernel wins — but
    # the load-bearing property is that the order is stable and both
    # fire at the exact instant.
    assert fired == [(0.0450, "kernel"), (0.0450, "wheel")]


def test_schedule_in_relative(env):
    wheel = TimingWheel(env, tick=0.01, slots=8, levels=2)
    fired, cb = _collector(env)
    env.run(until=0.25)
    wheel.schedule_in(0.1, cb, "rel")
    env.run(until=1.0)
    assert fired == [(pytest.approx(0.35), "rel")]


def test_dense_load_all_fire_once(env):
    wheel = TimingWheel(env, tick=0.01, slots=16, levels=2)
    fired, cb = _collector(env)
    times = [0.001 * (7 * i % 997) for i in range(1, 500)]
    for i, t in enumerate(times):
        wheel.schedule(t, cb, i)
    env.run(until=2.0)
    assert len(fired) == len(times)
    assert fired == sorted(fired)
    assert wheel.pending == 0


def test_schedule_from_callback(env):
    wheel = TimingWheel(env, tick=0.01, slots=8, levels=2)
    fired = []

    def chain(n):
        fired.append((env.now, n))
        if n < 5:
            wheel.schedule(env.now + 0.037, chain, n + 1)

    wheel.schedule(0.01, chain, 0)
    env.run(until=2.0)
    assert [n for _, n in fired] == [0, 1, 2, 3, 4, 5]
    assert fired[-1][0] == pytest.approx(0.01 + 5 * 0.037)


def test_constructor_validation(env):
    with pytest.raises(ValueError):
        TimingWheel(env, tick=0.0)
    with pytest.raises(ValueError):
        TimingWheel(env, slots=1)
    with pytest.raises(ValueError):
        TimingWheel(env, levels=0)
