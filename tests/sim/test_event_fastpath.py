"""Tests for the flat-event fast paths: serve_event, the process
trampoline, inline resolution, interrupt/cancel delivery through
short-circuited chains, the Countdown join primitive, and the fault
contract of the DB-side chain objects (crash a participant mid-2PC /
mid-update and the chain must abort cleanly: no leaked _ServeRequest,
resource counts restored, done fired exactly once)."""

import pytest

from repro.sim import Countdown, Environment, Interrupt, Node
from repro.sim.kernel import _MAX_INLINE_DEPTH, Event
from repro.sim.resources import Resource


# -- serve_event: uncontended --------------------------------------------------


def test_serve_event_uncontended_holds_and_releases(env):
    res = Resource(env, capacity=1)
    finished = []

    def worker(env):
        yield res.serve_event(2.0)
        finished.append(env.now)

    env.process(worker(env))
    env.run(until=1.0)
    assert res.in_use == 1           # slot held during service
    env.run()
    assert finished == [2.0]
    assert res.in_use == 0           # released at service end
    assert res.total_requests == 1
    assert res.busy_time == pytest.approx(2.0)


def test_serve_event_matches_generator_serve_timing(env):
    """Flat and generator forms must finish at identical times."""
    res_a = Resource(env, capacity=2)
    res_b = Resource(env, capacity=2)
    flat, gen = [], []

    def flat_worker(env, delay):
        yield env.timeout(delay)
        yield res_a.serve_event(1.5)
        flat.append(env.now)

    def gen_worker(env, delay):
        yield env.timeout(delay)
        yield from res_b.serve(1.5)
        gen.append(env.now)

    for d in (0.0, 0.1, 0.2, 0.3):   # 4 jobs on 2 slots: contention
        env.process(flat_worker(env, d))
        env.process(gen_worker(env, d))
    env.run()
    assert flat == gen


# -- serve_event: contended ----------------------------------------------------


def test_serve_event_contended_fifo_order(env):
    res = Resource(env, capacity=1)
    finished = []

    def worker(env, name):
        yield res.serve_event(1.0)
        finished.append((env.now, name))

    for i in range(4):
        env.process(worker(env, i))
    env.run()
    # serial slot, FIFO grants: completion at 1, 2, 3, 4 in arrival order
    assert finished == [(1.0, 0), (2.0, 1), (3.0, 2), (4.0, 3)]
    assert res.queue_length == 0
    assert res.in_use == 0


def test_serve_event_contended_service_starts_at_grant(env):
    res = Resource(env, capacity=1)
    finished = []

    def first(env):
        yield res.serve_event(3.0)
        finished.append(("first", env.now))

    def second(env):
        yield env.timeout(0.5)       # queues behind first at t=0.5
        yield res.serve_event(2.0)
        finished.append(("second", env.now))

    env.process(first(env))
    env.process(second(env))
    env.run()
    # second's service starts at t=3 (grant), not submission (t=0.5)
    assert finished == [("first", 3.0), ("second", 5.0)]


def test_serve_event_mixed_with_request_release(env):
    """Flat serves interleave correctly with manual request()/release()."""
    res = Resource(env, capacity=1)
    log = []

    def manual(env):
        req = res.request()
        yield req
        yield env.timeout(1.0)
        res.release(req)
        log.append(("manual", env.now))

    def flat(env):
        yield res.serve_event(1.0)
        log.append(("flat", env.now))

    env.process(manual(env))
    env.process(flat(env))
    env.run()
    assert log == [("manual", 1.0), ("flat", 2.0)]


# -- release validation (validate-first fix) ----------------------------------


def test_release_underflow_raises_without_corrupting(env):
    res = Resource(env, capacity=2)
    with pytest.raises(RuntimeError):
        res.release(None)
    # Validation happens before mutation: the resource is still usable.
    assert res.in_use == 0
    req = res.request()
    assert req.triggered
    assert res.in_use == 1
    res.release(req)
    assert res.in_use == 0
    with pytest.raises(RuntimeError):
        res.release(req)
    assert res.in_use == 0
    assert res.utilization() >= 0.0  # busy bookkeeping not corrupted


# -- the process trampoline ----------------------------------------------------


def test_trampoline_chain_of_resolved_events_is_flat(env):
    """A long chain of already-processed events resumes iteratively —
    no scheduler re-entry, no Python-stack growth, same timestep."""
    log = []

    def worker(env):
        for i in range(10_000):
            value = yield env.resolved(i)
            assert value == i
        log.append(env.now)

    env.process(worker(env))
    env.run()
    assert log == [0.0]


def test_resolved_event_carries_value_and_is_processed(env):
    ev = env.resolved("v")
    assert ev.triggered and ev.processed and ev.ok
    assert ev.value == "v"


def test_awaitable_call_helper_conditional_wait(env):
    """The flat-event protocol: a helper returns either a live event or
    a resolved one; the caller always yields it."""
    gate = {"open": True}
    pending = []

    def helper():
        if gate["open"]:
            return env.resolved("fast")
        ev = env.event()
        pending.append(ev)
        return ev

    log = []

    def worker(env):
        log.append((yield helper()))     # resolved: same-timestep
        gate["open"] = False
        log.append((yield helper()))     # live event: parks
        log.append(env.now)

    env.process(worker(env))
    env.run()
    assert log == ["fast"]
    pending[0].succeed("slow")
    env.run()
    assert log == ["fast", "slow", 0.0]


# -- inline resolution ---------------------------------------------------------


def test_resolve_runs_callbacks_inline(env):
    order = []
    ev = env.event()
    ev.callbacks.append(lambda e: order.append(("cb", e.value)))
    ev._resolve("x")
    order.append("after")
    assert order == [("cb", "x"), "after"]
    assert ev.processed and ev.ok and ev.value == "x"


def test_resolve_depth_limit_falls_back_to_heap(env):
    """Past _MAX_INLINE_DEPTH nested resolutions, delivery degrades to a
    scheduled succeed() — bounded stack, nothing lost."""
    depth = 2 * _MAX_INLINE_DEPTH
    events = [env.event() for _ in range(depth)]
    fired = []

    def chain(i):
        def cb(_ev):
            fired.append(i)
            if i + 1 < depth:
                events[i + 1]._resolve()
        return cb

    for i, ev in enumerate(events):
        ev.callbacks.append(chain(i))
    events[0]._resolve()
    # the first _MAX_INLINE_DEPTH - 1 nested resolutions ran inline...
    assert len(fired) == _MAX_INLINE_DEPTH
    # ...and the rest drain through the scheduler without stack growth.
    env.run()
    assert fired == list(range(depth))


def test_resolve_on_triggered_event_raises(env):
    ev = env.event()
    ev.succeed()
    from repro.sim.kernel import SimulationError
    with pytest.raises(SimulationError):
        ev._resolve()


# -- interrupt/cancel through short-circuited chains ---------------------------


def test_interrupt_while_parked_on_serve_event(env):
    """Interrupting a waiter parked on a flat serve delivers the
    Interrupt at interrupt time; the slot itself is held to the
    scheduled service end (the service is not cancelled)."""
    node = Node(env, "n", cores=1)
    log = []

    def worker(env):
        try:
            yield node.compute(5.0)
            log.append("done")
        except Interrupt as exc:
            log.append(("interrupted", env.now, exc.cause))

    proc = env.process(worker(env))

    def interrupter(env):
        yield env.timeout(1.0)
        proc.interrupt("stop")

    env.process(interrupter(env))
    env.run(until=3.0)
    assert log == [("interrupted", 1.0, "stop")]
    assert node.cpu.in_use == 1          # service still holds the core
    env.run()
    assert node.cpu.in_use == 0          # released at the scheduled end


def test_interrupt_after_trampolined_chain(env):
    """An interrupt lands correctly in a process that just trampolined
    through a chain of resolved events and parked on a live one."""
    log = []

    def worker(env):
        for i in range(100):
            yield env.resolved(i)
        try:
            yield env.event()            # park forever
        except Interrupt:
            log.append(env.now)

    proc = env.process(worker(env))

    def interrupter(env):
        yield env.timeout(2.0)
        proc.interrupt()

    env.process(interrupter(env))
    env.run()
    assert log == [2.0]


def test_timer_cancel_alongside_serve_event(env):
    """Driver pattern over the flat path: AnyOf(serve, timer) with the
    losing timer cancelled — no dead heap entries linger."""
    res = Resource(env, capacity=1)
    log = []

    def worker(env):
        ev = res.serve_event(1.0)
        timer = env.timeout(60.0)
        yield env.any_of([ev, timer])
        assert ev.triggered and not timer.triggered
        assert timer.cancel()
        log.append(env.now)

    env.process(worker(env))
    env.run()
    assert log == [1.0]
    assert env.now == 1.0                # nothing waited for the dead timer


# -- Countdown: the 2PC fan-out join -------------------------------------------


def test_countdown_fires_on_nth_hit(env):
    cd = Countdown(env, 3)
    cd.hit("a")
    cd.hit("b")
    assert not cd.triggered
    cd.hit("c")
    assert cd.triggered
    env.run()
    assert cd.value == ["a", "b", "c"]   # completion order


def test_countdown_zero_branches_fires_immediately(env):
    cd = Countdown(env, 0)
    assert cd.triggered                  # like AllOf([]): succeeds at once
    env.run()
    assert cd.value == []


def test_countdown_watch_matches_allof_timing(env):
    """Countdown over N timers must fire at the same simulated time as
    AllOf over the identical timers (the dispatch-equivalence contract
    that lets 2PC chains swap one for the other)."""
    times = {}

    def with_allof(env):
        yield env.all_of([env.timeout(d) for d in (0.3, 0.1, 0.2)])
        times["allof"] = env.now

    env.process(with_allof(env))
    env.run()
    env2 = Environment()
    cd = Countdown(env2, 3)
    for d in (0.3, 0.1, 0.2):
        cd.watch(env2.timeout(d, value=d))
    env2.run()
    assert times["allof"] == env2.now == 0.3
    assert cd.value == [0.1, 0.2, 0.3]   # completion order


def test_countdown_watch_already_processed_event(env):
    cd = Countdown(env, 1)
    cd.watch(env.resolved("early"))
    assert cd.triggered
    env.run()
    assert cd.value == ["early"]


def test_countdown_fail_fast_on_branch_failure(env):
    cd = Countdown(env, 2)
    ok, bad = env.event(), env.event()
    cd.watch(ok)
    cd.watch(bad)
    bad.fail(RuntimeError("participant died"))
    env.run()
    assert cd.triggered and not cd.ok
    assert isinstance(cd.value, RuntimeError)


def test_countdown_double_completion_guard(env):
    """The hazard class the chains must survive: two branches failing at
    the same instant, and a straggler completing after the join already
    settled — neither may re-trigger (SimulationError) the countdown."""
    cd = Countdown(env, 3)
    a, b, c = env.event(), env.event(), env.event()
    for ev in (a, b, c):
        cd.watch(ev)
    a.fail(RuntimeError("first death"))
    b.fail(RuntimeError("same-instant second death"))
    c.succeed("late straggler")
    env.run()                            # would raise on a double trigger
    assert cd.triggered and not cd.ok
    assert str(cd.value) == "first death"
    # direct late hit/miss after settling: absorbed, not raised
    cd.hit("post")
    cd.miss(RuntimeError("post"))


def test_countdown_late_hit_after_success_ignored(env):
    cd = Countdown(env, 1)
    cd.hit("winner")
    cd.hit("straggler")
    env.run()
    assert cd.value == ["winner"]


# -- chain fault paths: crash a participant mid-flight -------------------------
#
# Each migrated chain gets a regression test for the "callback fires
# after the chain already settled" race: a crashed participant fails the
# chain mid-protocol and the chain must abort exactly once, release
# every latch/lock it held, and leave no queued _ServeRequest behind.


def _drain(env, until=30.0):
    env.run(until=until)


def _assert_resource_clean(res):
    assert res.in_use == 0
    assert res.queue_length == 0         # no leaked _ServeRequest


def test_etcd_update_chain_aborts_cleanly_on_leader_crash():
    from repro.systems import EtcdSystem, SystemConfig
    from repro.txn import Op, OpType, Transaction, TxnStatus

    env = Environment()
    system = EtcdSystem(env, SystemConfig(num_nodes=3))
    system.load({"k": b"0"})
    system.servers[0].crash()            # the Raft leader
    txn = Transaction(ops=[Op(OpType.UPDATE, "k", b"1")])
    done = system.submit(txn)
    _drain(env)
    assert done.triggered and done.ok
    assert txn.status is TxnStatus.ABORTED
    assert not system._waiters            # no apply waiter leaked
    _assert_resource_clean(system.client_node.nic_out)
    _assert_resource_clean(system.servers[0].cpu)


def test_tikv_update_chain_aborts_cleanly_on_leader_crash():
    from repro.systems import SystemConfig, TikvSystem
    from repro.txn import Op, OpType, Transaction, TxnStatus

    env = Environment()
    system = TikvSystem(env, SystemConfig(num_nodes=3))
    records = {f"k{i}": b"0" for i in range(20)}
    system.load(records)
    key = "k0"
    system.cluster.nodes[system.cluster.leader_of(key)].crash()
    txn = Transaction(ops=[Op(OpType.UPDATE, key, b"1")])
    done = system.submit(txn)
    _drain(env)
    assert done.triggered and done.ok
    assert txn.status is TxnStatus.ABORTED
    assert not system.cluster._waiters
    _assert_resource_clean(system.client_node.nic_out)
    for thread in system.cluster.store_threads.values():
        _assert_resource_clean(thread)


def _tidb_cross_group_txn(env, crash_groups=(0,)):
    """A 2-key TiDB transaction spanning two region groups, with the
    leader(s) of ``crash_groups`` (indices into the key list) crashed."""
    from repro.systems import SystemConfig, TiDBSystem
    from repro.txn import Op, OpType, Transaction

    system = TiDBSystem(env, SystemConfig(num_nodes=3), instant_abort=True)
    records = {f"k{i}": b"0" for i in range(40)}
    system.load(records)
    a = "k0"
    b = next(k for k in records
             if system.cluster.leader_of(k) != system.cluster.leader_of(a))
    keys = [a, b]
    for i in crash_groups:
        system.cluster.nodes[system.cluster.leader_of(keys[i])].crash()
    txn = Transaction(ops=[Op(OpType.UPDATE, a, b"1"),
                           Op(OpType.UPDATE, b, b"2")])
    return system, txn


def _assert_tidb_clean_abort(system, txn, done):
    from repro.txn import AbortReason, TxnStatus

    assert done.triggered and done.ok
    assert txn.status is TxnStatus.ABORTED
    assert txn.abort_reason is AbortReason.COORDINATOR_ABORT
    assert system.pstore.locked_keys() == []       # percolator rolled back
    for latch in system._latches.values():         # scheduler latches freed
        _assert_resource_clean(latch)
    for thread in system.cluster.store_threads.values():
        _assert_resource_clean(thread)


def test_tidb_2pc_chain_aborts_cleanly_on_participant_crash():
    """One prewrite participant dies mid-2PC: countdown fails fast, the
    chain rolls back and aborts once, the healthy participant's later
    completion is absorbed (the straggler leg of the race)."""
    env = Environment()
    system, txn = _tidb_cross_group_txn(env, crash_groups=(0,))
    done = system.submit(txn)
    _drain(env)
    _assert_tidb_clean_abort(system, txn, done)
    # Pinned modelling limit (see _Txn's fault contract): the surviving
    # participant's replicated prewrite value stays in the single-version
    # store after the abort; the crashed group's key does not.
    crashed_key = next(k for k in txn.write_set
                       if system.cluster.nodes[
                           system.cluster.leader_of(k)].crashed)
    assert system.cluster.state.get(crashed_key)[0] == b"0"


def test_tidb_2pc_chain_survives_two_same_instant_failures():
    """Both prewrite participants die: two failure callbacks race into
    the countdown at the same instant — exactly one abort, no
    SimulationError from a double trigger."""
    env = Environment()
    system, txn = _tidb_cross_group_txn(env, crash_groups=(0, 1))
    done = system.submit(txn)
    _drain(env)
    _assert_tidb_clean_abort(system, txn, done)


def test_twopc_chain_crash_between_phases_blocks_once():
    """Coordinator crash between votes and decision over the flat chain:
    one BLOCKED decision, prepared participants recorded, and the late
    inter-phase timer cannot re-complete the settled instance."""
    from repro.sharding import Decision, TwoPhaseCoordinator, Vote

    env = Environment()
    coordinator = TwoPhaseCoordinator(env, extra_phase_delay=0.5)

    class Prep:
        def __init__(self):
            self.prepared = False
            self.finalized = False

        def prepare(self, txn_id, payload):
            self.prepared = True
            return env.resolved(Vote.YES)

        def finalize(self, txn_id, decision):
            self.finalized = True
            return env.resolved(True)

    parts = [Prep(), Prep()]
    done = coordinator.run(1, parts)

    def crash(env):
        yield env.timeout(0.1)           # after votes, before decision
        coordinator.crash()

    env.process(crash(env))
    env.run()
    assert done.value is Decision.BLOCKED
    assert all(p.prepared for p in parts)
    assert not any(p.finalized for p in parts)     # phase 2 never ran
    assert coordinator.stats.blocked == 1
    assert coordinator.stats.prepared_blocked_participants == parts
