"""Tests for the flat-event fast paths: serve_event, the process
trampoline, inline resolution, and interrupt/cancel delivery through
short-circuited chains."""

import pytest

from repro.sim import Environment, Interrupt, Node
from repro.sim.kernel import _MAX_INLINE_DEPTH, Event
from repro.sim.resources import Resource


# -- serve_event: uncontended --------------------------------------------------


def test_serve_event_uncontended_holds_and_releases(env):
    res = Resource(env, capacity=1)
    finished = []

    def worker(env):
        yield res.serve_event(2.0)
        finished.append(env.now)

    env.process(worker(env))
    env.run(until=1.0)
    assert res.in_use == 1           # slot held during service
    env.run()
    assert finished == [2.0]
    assert res.in_use == 0           # released at service end
    assert res.total_requests == 1
    assert res.busy_time == pytest.approx(2.0)


def test_serve_event_matches_generator_serve_timing(env):
    """Flat and generator forms must finish at identical times."""
    res_a = Resource(env, capacity=2)
    res_b = Resource(env, capacity=2)
    flat, gen = [], []

    def flat_worker(env, delay):
        yield env.timeout(delay)
        yield res_a.serve_event(1.5)
        flat.append(env.now)

    def gen_worker(env, delay):
        yield env.timeout(delay)
        yield from res_b.serve(1.5)
        gen.append(env.now)

    for d in (0.0, 0.1, 0.2, 0.3):   # 4 jobs on 2 slots: contention
        env.process(flat_worker(env, d))
        env.process(gen_worker(env, d))
    env.run()
    assert flat == gen


# -- serve_event: contended ----------------------------------------------------


def test_serve_event_contended_fifo_order(env):
    res = Resource(env, capacity=1)
    finished = []

    def worker(env, name):
        yield res.serve_event(1.0)
        finished.append((env.now, name))

    for i in range(4):
        env.process(worker(env, i))
    env.run()
    # serial slot, FIFO grants: completion at 1, 2, 3, 4 in arrival order
    assert finished == [(1.0, 0), (2.0, 1), (3.0, 2), (4.0, 3)]
    assert res.queue_length == 0
    assert res.in_use == 0


def test_serve_event_contended_service_starts_at_grant(env):
    res = Resource(env, capacity=1)
    finished = []

    def first(env):
        yield res.serve_event(3.0)
        finished.append(("first", env.now))

    def second(env):
        yield env.timeout(0.5)       # queues behind first at t=0.5
        yield res.serve_event(2.0)
        finished.append(("second", env.now))

    env.process(first(env))
    env.process(second(env))
    env.run()
    # second's service starts at t=3 (grant), not submission (t=0.5)
    assert finished == [("first", 3.0), ("second", 5.0)]


def test_serve_event_mixed_with_request_release(env):
    """Flat serves interleave correctly with manual request()/release()."""
    res = Resource(env, capacity=1)
    log = []

    def manual(env):
        req = res.request()
        yield req
        yield env.timeout(1.0)
        res.release(req)
        log.append(("manual", env.now))

    def flat(env):
        yield res.serve_event(1.0)
        log.append(("flat", env.now))

    env.process(manual(env))
    env.process(flat(env))
    env.run()
    assert log == [("manual", 1.0), ("flat", 2.0)]


# -- release validation (validate-first fix) ----------------------------------


def test_release_underflow_raises_without_corrupting(env):
    res = Resource(env, capacity=2)
    with pytest.raises(RuntimeError):
        res.release(None)
    # Validation happens before mutation: the resource is still usable.
    assert res.in_use == 0
    req = res.request()
    assert req.triggered
    assert res.in_use == 1
    res.release(req)
    assert res.in_use == 0
    with pytest.raises(RuntimeError):
        res.release(req)
    assert res.in_use == 0
    assert res.utilization() >= 0.0  # busy bookkeeping not corrupted


# -- the process trampoline ----------------------------------------------------


def test_trampoline_chain_of_resolved_events_is_flat(env):
    """A long chain of already-processed events resumes iteratively —
    no scheduler re-entry, no Python-stack growth, same timestep."""
    log = []

    def worker(env):
        for i in range(10_000):
            value = yield env.resolved(i)
            assert value == i
        log.append(env.now)

    env.process(worker(env))
    env.run()
    assert log == [0.0]


def test_resolved_event_carries_value_and_is_processed(env):
    ev = env.resolved("v")
    assert ev.triggered and ev.processed and ev.ok
    assert ev.value == "v"


def test_awaitable_call_helper_conditional_wait(env):
    """The flat-event protocol: a helper returns either a live event or
    a resolved one; the caller always yields it."""
    gate = {"open": True}
    pending = []

    def helper():
        if gate["open"]:
            return env.resolved("fast")
        ev = env.event()
        pending.append(ev)
        return ev

    log = []

    def worker(env):
        log.append((yield helper()))     # resolved: same-timestep
        gate["open"] = False
        log.append((yield helper()))     # live event: parks
        log.append(env.now)

    env.process(worker(env))
    env.run()
    assert log == ["fast"]
    pending[0].succeed("slow")
    env.run()
    assert log == ["fast", "slow", 0.0]


# -- inline resolution ---------------------------------------------------------


def test_resolve_runs_callbacks_inline(env):
    order = []
    ev = env.event()
    ev.callbacks.append(lambda e: order.append(("cb", e.value)))
    ev._resolve("x")
    order.append("after")
    assert order == [("cb", "x"), "after"]
    assert ev.processed and ev.ok and ev.value == "x"


def test_resolve_depth_limit_falls_back_to_heap(env):
    """Past _MAX_INLINE_DEPTH nested resolutions, delivery degrades to a
    scheduled succeed() — bounded stack, nothing lost."""
    depth = 2 * _MAX_INLINE_DEPTH
    events = [env.event() for _ in range(depth)]
    fired = []

    def chain(i):
        def cb(_ev):
            fired.append(i)
            if i + 1 < depth:
                events[i + 1]._resolve()
        return cb

    for i, ev in enumerate(events):
        ev.callbacks.append(chain(i))
    events[0]._resolve()
    # the first _MAX_INLINE_DEPTH - 1 nested resolutions ran inline...
    assert len(fired) == _MAX_INLINE_DEPTH
    # ...and the rest drain through the scheduler without stack growth.
    env.run()
    assert fired == list(range(depth))


def test_resolve_on_triggered_event_raises(env):
    ev = env.event()
    ev.succeed()
    from repro.sim.kernel import SimulationError
    with pytest.raises(SimulationError):
        ev._resolve()


# -- interrupt/cancel through short-circuited chains ---------------------------


def test_interrupt_while_parked_on_serve_event(env):
    """Interrupting a waiter parked on a flat serve delivers the
    Interrupt at interrupt time; the slot itself is held to the
    scheduled service end (the service is not cancelled)."""
    node = Node(env, "n", cores=1)
    log = []

    def worker(env):
        try:
            yield node.compute(5.0)
            log.append("done")
        except Interrupt as exc:
            log.append(("interrupted", env.now, exc.cause))

    proc = env.process(worker(env))

    def interrupter(env):
        yield env.timeout(1.0)
        proc.interrupt("stop")

    env.process(interrupter(env))
    env.run(until=3.0)
    assert log == [("interrupted", 1.0, "stop")]
    assert node.cpu.in_use == 1          # service still holds the core
    env.run()
    assert node.cpu.in_use == 0          # released at the scheduled end


def test_interrupt_after_trampolined_chain(env):
    """An interrupt lands correctly in a process that just trampolined
    through a chain of resolved events and parked on a live one."""
    log = []

    def worker(env):
        for i in range(100):
            yield env.resolved(i)
        try:
            yield env.event()            # park forever
        except Interrupt:
            log.append(env.now)

    proc = env.process(worker(env))

    def interrupter(env):
        yield env.timeout(2.0)
        proc.interrupt()

    env.process(interrupter(env))
    env.run()
    assert log == [2.0]


def test_timer_cancel_alongside_serve_event(env):
    """Driver pattern over the flat path: AnyOf(serve, timer) with the
    losing timer cancelled — no dead heap entries linger."""
    res = Resource(env, capacity=1)
    log = []

    def worker(env):
        ev = res.serve_event(1.0)
        timer = env.timeout(60.0)
        yield env.any_of([ev, timer])
        assert ev.triggered and not timer.triggered
        assert timer.cancel()
        log.append(env.now)

    env.process(worker(env))
    env.run()
    assert log == [1.0]
    assert env.now == 1.0                # nothing waited for the dead timer
