"""Tests for the kernel hot-path machinery: cancellable/pooled timeouts,
heap compaction, stop-events, and the immediate-resume path."""

import pytest

from repro.sim.kernel import Environment, Event, SimulationError, Timeout


# -- cancellable timeouts ---------------------------------------------------


def test_cancelled_timeout_never_fires(env):
    fired = []
    timer = env.timeout(1.0)
    timer.callbacks.append(lambda ev: fired.append(ev))
    assert timer.cancel() is True
    env.run()
    assert fired == []
    assert env.now == 0.0  # nothing left to simulate


def test_cancel_after_fire_is_noop(env):
    timer = env.timeout(1.0)
    env.run()
    assert timer.triggered
    assert timer.cancel() is False


def test_double_cancel_counts_once(env):
    timer = env.timeout(1.0)
    assert timer.cancel() is True
    assert timer.cancel() is False
    assert env._cancelled_count == 1
    env.run()
    assert env._cancelled_count == 0


def test_cancelled_timer_does_not_stall_other_events(env):
    log = []

    def proc():
        dead = env.timeout(100.0)
        yield env.timeout(1.0)
        dead.cancel()
        yield env.timeout(1.0)
        log.append(env.now)

    env.process(proc())
    env.run()
    assert log == [2.0]


def test_pending_excludes_cancelled(env):
    timers = [env.timeout(10.0 + i) for i in range(5)]
    assert env.pending == 5
    for t in timers[:3]:
        t.cancel()
    assert env.pending == 2


def test_timeout_pool_recycles_objects(env):
    def churn():
        for _ in range(200):
            dead = env.timeout(1000.0)
            yield env.timeout(0.001)
            dead.cancel()

    env.process(churn())
    env.run()
    # Reaped timers land in the free list and the heap stays compact.
    assert len(env._timeout_pool) > 0
    assert len(env._queue) < 50


def test_recycled_timeout_behaves_like_fresh(env):
    t1 = env.timeout(5.0, value="old")
    t1.cancel()
    env._compact()  # force the reap so the pool holds t1
    assert t1 in env._timeout_pool
    t2 = env.timeout(2.0, value="new")
    assert t2 is t1  # recycled object
    env.run()
    assert t2.triggered and t2.ok and t2.value == "new"
    assert env.now == 2.0


def test_compaction_preserves_live_entries(env):
    fired = []
    live = env.timeout(3.0)
    live.callbacks.append(lambda ev: fired.append(env.now))
    dead = [env.timeout(1.0) for _ in range(100)]
    for t in dead:
        t.cancel()
    env._compact()
    assert env._cancelled_count == 0
    env.run()
    assert fired == [3.0]


def test_negative_delay_rejected_also_from_pool(env):
    t = env.timeout(1.0)
    t.cancel()
    env._compact()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


# -- run(stop=...) ----------------------------------------------------------


def test_run_stop_event_halts_loop(env):
    log = []

    def worker():
        for _ in range(100):
            yield env.timeout(1.0)
            log.append(env.now)

    stop = env.event()

    def stopper():
        yield env.timeout(5.0)
        stop.succeed()

    env.process(worker())
    env.process(stopper())
    env.run(until=1000.0, stop=stop)
    # The loop halts at the stop trigger; the clock does NOT jump to until,
    # and same-time events queued behind the stop are not processed.
    assert env.now == 5.0
    assert log == [1.0, 2.0, 3.0, 4.0]


def test_run_without_stop_reaches_until(env):
    env.timeout(1.0)
    env.run(until=10.0)
    assert env.now == 10.0


def test_run_stop_on_process_completion(env):
    def short():
        yield env.timeout(2.0)

    def forever():
        while True:
            yield env.timeout(0.5)

    proc = env.process(short())
    env.process(forever())
    env.run(until=100.0, stop=proc)
    assert env.now == 2.0


# -- immediate-resume path --------------------------------------------------


def test_yield_already_processed_event_resumes_same_timestep(env):
    done = env.event()
    done.succeed("payload")
    env.run()  # process the event fully: callbacks -> None
    assert done.processed
    log = []

    def waiter():
        value = yield done  # already processed: immediate resume
        log.append((env.now, value))
        yield env.timeout(1.0)
        log.append((env.now, "after"))

    env.process(waiter())
    env.run()
    assert log == [(0.0, "payload"), (1.0, "after")]


def test_yield_chain_of_processed_events(env):
    events = []
    for i in range(5):
        ev = env.event()
        ev.succeed(i)
        events.append(ev)
    env.run()
    seen = []

    def walker():
        for ev in events:
            seen.append((yield ev))

    env.process(walker())
    env.run()
    assert seen == [0, 1, 2, 3, 4]


def test_failed_processed_event_raises_on_yield(env):
    boom = env.event()
    boom.fail(RuntimeError("late failure"))
    env.run()
    caught = []

    def waiter():
        try:
            yield boom
        except RuntimeError as exc:
            caught.append(str(exc))

    env.process(waiter())
    env.run()
    assert caught == ["late failure"]


def test_allof_waits_for_pending_despite_processed_component(env):
    """AllOf over {already-processed, still-pending} must NOT trigger
    until the pending component fires (regression: the counter hit zero
    and succeeded immediately with the pending event's value as None)."""
    done = env.event()
    done.succeed("early")
    env.run()
    assert done.processed
    later = env.event()
    cond = env.all_of([done, later])
    assert not cond.triggered
    later.succeed("late")
    env.run()
    assert cond.triggered
    assert cond.value == ["early", "late"]


def test_allof_over_only_processed_components(env):
    events = []
    for i in range(3):
        ev = env.event()
        ev.succeed(i)
        events.append(ev)
    env.run()
    cond = env.all_of(events)
    assert cond.triggered
    assert cond.value == [0, 1, 2]


# -- step() with cancelled entries ------------------------------------------


def test_step_skips_cancelled(env):
    dead = env.timeout(1.0)
    live = env.timeout(2.0)
    dead.cancel()
    env.step()  # must execute the live timer, skipping the dead one
    assert env.now == 2.0
    assert live.triggered


def test_step_empty_after_cancellations_raises(env):
    t = env.timeout(1.0)
    t.cancel()
    with pytest.raises(SimulationError):
        env.step()
