"""Tests for the calibrated cost model."""

import pytest

from repro.sim.costs import DEFAULT_COSTS, CostModel


def test_defaults_are_positive():
    costs = DEFAULT_COSTS
    for name in ("net_latency", "sig_verify", "store_put", "raft_propose",
                 "fabric_simulate", "evm_exec_base", "mpt_update_base",
                 "tikv_apply", "sql_parse"):
        assert getattr(costs, name) > 0, name


def test_hash_time_linear_in_size():
    costs = DEFAULT_COSTS
    t0 = costs.hash_time(0)
    t1k = costs.hash_time(1000)
    t2k = costs.hash_time(2000)
    assert t1k > t0
    assert t2k - t1k == pytest.approx(t1k - t0)


def test_transfer_time_matches_bandwidth():
    costs = DEFAULT_COSTS
    # 125 MB at 1 Gb/s takes one second
    assert costs.transfer_time(125_000_000) == pytest.approx(1.0)


def test_mpt_update_fit_matches_fig11b():
    """Fig. 11b: ~56 us at 10 B records, ~2.5 ms at 5000 B."""
    costs = DEFAULT_COSTS
    assert costs.mpt_update_time(10) == pytest.approx(61e-6, rel=0.15)
    assert costs.mpt_update_time(5000) == pytest.approx(2.5e-3, rel=0.15)


def test_derive_overrides_single_field():
    derived = DEFAULT_COSTS.derive(sig_verify=42.0)
    assert derived.sig_verify == 42.0
    assert derived.net_latency == DEFAULT_COSTS.net_latency


def test_cost_model_is_frozen():
    with pytest.raises(Exception):
        DEFAULT_COSTS.sig_verify = 0.0


def test_fresh_model_equals_default():
    assert CostModel() == DEFAULT_COSTS
