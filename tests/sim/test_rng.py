"""Tests for deterministic RNG streams."""

from repro.sim.rng import RngRegistry


def test_same_name_same_stream_object():
    reg = RngRegistry(1)
    assert reg.stream("a") is reg.stream("a")


def test_streams_are_independent():
    reg1 = RngRegistry(1)
    a_first = [reg1.stream("a").random() for _ in range(5)]
    reg2 = RngRegistry(1)
    # interleave another stream; "a" must be unaffected
    reg2.stream("b").random()
    a_second = [reg2.stream("a").random() for _ in range(5)]
    assert a_first == a_second


def test_different_seeds_differ():
    a = RngRegistry(1).stream("x").random()
    b = RngRegistry(2).stream("x").random()
    assert a != b


def test_different_names_differ():
    reg = RngRegistry(1)
    assert reg.stream("x").random() != reg.stream("y").random()


def test_fork_is_deterministic():
    f1 = RngRegistry(7).fork("node-1").stream("s").random()
    f2 = RngRegistry(7).fork("node-1").stream("s").random()
    assert f1 == f2


def test_fork_differs_from_parent():
    reg = RngRegistry(7)
    assert reg.fork("child").stream("s").random() != reg.stream("s").random()
