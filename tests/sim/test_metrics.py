"""Tests for measurement utilities."""

import pytest

from repro.sim.metrics import (LatencyRecorder, ThroughputMeter, TxnStats,
                               percentile)


def test_percentile_nearest_rank():
    values = sorted([10.0, 20.0, 30.0, 40.0, 50.0])
    assert percentile(values, 50) == 30.0
    assert percentile(values, 100) == 50.0
    assert percentile(values, 1) == 10.0


def test_percentile_empty_raises():
    with pytest.raises(ValueError):
        percentile([], 50)


def test_percentile_out_of_range():
    with pytest.raises(ValueError):
        percentile([1.0], 150)


def test_latency_recorder_statistics():
    rec = LatencyRecorder()
    for v in (0.1, 0.2, 0.3, 0.4):
        rec.record(v)
    assert rec.count == 4
    assert rec.mean == pytest.approx(0.25)
    assert rec.max == 0.4
    assert rec.pct(50) == pytest.approx(0.2)


def test_latency_recorder_rejects_negative():
    rec = LatencyRecorder()
    with pytest.raises(ValueError):
        rec.record(-0.1)


def test_latency_recorder_empty_defaults():
    rec = LatencyRecorder()
    assert rec.mean == 0.0
    assert rec.max == 0.0
    assert rec.pct(99) == 0.0


def test_throughput_meter_window():
    meter = ThroughputMeter()
    meter.mark()  # warm-up completion: excluded
    meter.start(now=10.0)
    for _ in range(50):
        meter.mark()
    assert meter.tps(now=15.0) == pytest.approx(10.0)
    assert meter.completed_before_start == 1


def test_throughput_meter_requires_start():
    meter = ThroughputMeter()
    with pytest.raises(RuntimeError):
        meter.tps(now=1.0)


def test_txn_stats_aggregation():
    stats = TxnStats()
    stats.commit(0.1)
    stats.commit(0.3)
    stats.abort("read-write conflict")
    assert stats.total == 3
    assert stats.committed == 2
    assert stats.abort_rate == pytest.approx(1 / 3)
    assert stats.abort_reasons["read-write conflict"] == 1


def test_txn_stats_phase_latency():
    stats = TxnStats()
    stats.record_phase("order", 0.7)
    stats.record_phase("order", 0.9)
    stats.record_phase("validate", 0.2)
    assert stats.phase_latency["order"].mean == pytest.approx(0.8)
    assert stats.phase_latency["validate"].count == 1


def test_txn_stats_empty_abort_rate():
    assert TxnStats().abort_rate == 0.0


def test_percentile_extremes_nearest_rank():
    values = [1.0, 2.0, 3.0, 4.0]
    # p=0: nearest rank clamps to the first sample; p=100: the last.
    assert percentile(values, 0) == 1.0
    assert percentile(values, 100) == 4.0
    assert percentile([7.0], 0) == 7.0
    assert percentile([7.0], 100) == 7.0


def test_latency_recorder_sorted_cache_invalidation():
    rec = LatencyRecorder()
    for v in (0.3, 0.1, 0.2):
        rec.record(v)
    assert rec.pct(50) == 0.2
    assert rec._sorted == [0.1, 0.2, 0.3]   # cache built by pct
    rec.record(0.05)                        # must invalidate the cache
    assert rec._sorted is None
    assert rec.pct(50) == 0.1
    assert rec.pct(100) == 0.3
    assert rec.pct(0) == 0.05


def test_latency_recorder_cache_detects_direct_appends():
    rec = LatencyRecorder()
    rec.record(0.2)
    assert rec.pct(50) == 0.2
    rec.samples.append(0.1)                 # behind record()'s back
    assert rec.pct(0) == 0.1


def test_latency_recorder_empty_pct_zero():
    rec = LatencyRecorder()
    assert rec.pct(0) == 0.0
    assert rec.pct(50) == 0.0
    assert rec.pct(100) == 0.0
