"""Tests for the discrete-event kernel."""

import pytest

from repro.sim.kernel import (AllOf, AnyOf, Environment, Event, Interrupt,
                              SimulationError)


def test_timeout_advances_clock(env):
    log = []

    def proc(env):
        yield env.timeout(1.5)
        log.append(env.now)
        yield env.timeout(0.5)
        log.append(env.now)

    env.process(proc(env))
    env.run()
    assert log == [1.5, 2.0]


def test_timeout_rejects_negative_delay(env):
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_processes_run_in_fifo_order_at_same_time(env):
    order = []

    def proc(env, name):
        yield env.timeout(1.0)
        order.append(name)

    for name in "abc":
        env.process(proc(env, name))
    env.run()
    assert order == ["a", "b", "c"]


def test_event_value_passes_to_waiter(env):
    got = []

    def waiter(env, ev):
        value = yield ev
        got.append(value)

    ev = env.event()

    def firer(env):
        yield env.timeout(1.0)
        ev.succeed(42)

    env.process(waiter(env, ev))
    env.process(firer(env))
    env.run()
    assert got == [42]


def test_event_failure_raises_in_waiter(env):
    caught = []

    def waiter(env, ev):
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))

    ev = env.event()
    env.process(waiter(env, ev))

    def firer(env):
        yield env.timeout(0.1)
        ev.fail(RuntimeError("boom"))

    env.process(firer(env))
    env.run()
    assert caught == ["boom"]


def test_event_double_trigger_is_error(env):
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)
    with pytest.raises(SimulationError):
        ev.fail(RuntimeError())


def test_event_value_before_trigger_is_error(env):
    ev = env.event()
    with pytest.raises(SimulationError):
        _ = ev.value
    with pytest.raises(SimulationError):
        _ = ev.ok


def test_fail_requires_exception_instance(env):
    ev = env.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_process_is_event_with_return_value(env):
    def inner(env):
        yield env.timeout(1.0)
        return "result"

    def outer(env):
        value = yield env.process(inner(env))
        return value

    proc = env.process(outer(env))
    env.run()
    assert proc.triggered and proc.value == "result"


def test_yield_non_event_raises(env):
    def bad(env):
        yield 42

    env.process(bad(env))
    with pytest.raises(SimulationError):
        env.run()


def test_any_of_timeout_does_not_fire_early(env):
    """A pending Timeout inside AnyOf must not count as triggered."""
    outcomes = []

    def proc(env):
        ev = env.event()
        timer = env.timeout(5.0)
        result = yield env.any_of([ev, timer])
        outcomes.append((env.now, ev.triggered))

    env.process(proc(env))
    env.run()
    assert outcomes == [(5.0, False)]


def test_any_of_first_event_wins(env):
    def proc(env):
        fast = env.timeout(1.0, value="fast")
        slow = env.timeout(2.0, value="slow")
        value = yield env.any_of([fast, slow])
        return value

    proc = env.process(proc(env))
    env.run()
    assert proc.value == "fast"


def test_all_of_waits_for_every_event(env):
    times = []

    def proc(env):
        values = yield env.all_of([env.timeout(1.0, "a"),
                                   env.timeout(3.0, "b"),
                                   env.timeout(2.0, "c")])
        times.append(env.now)
        return values

    proc = env.process(proc(env))
    env.run()
    assert times == [3.0]
    assert proc.value == ["a", "b", "c"]


def test_all_of_with_already_triggered_events(env):
    def proc(env):
        ev = env.event()
        ev.succeed("x")
        yield env.timeout(0.1)
        values = yield env.all_of([ev, env.timeout(0.1, "y")])
        return values

    proc = env.process(proc(env))
    env.run()
    assert proc.value == ["x", "y"]


def test_all_of_propagates_failure(env):
    caught = []

    def proc(env):
        bad = env.event()

        def failer(env):
            yield env.timeout(1.0)
            bad.fail(ValueError("nope"))

        env.process(failer(env))
        try:
            yield env.all_of([bad, env.timeout(10.0)])
        except ValueError:
            caught.append(env.now)

    env.process(proc(env))
    env.run(until=20)
    assert caught == [1.0]


def test_interrupt_raises_inside_process(env):
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as exc:
            log.append((env.now, exc.cause))

    proc = env.process(sleeper(env))

    def interrupter(env):
        yield env.timeout(2.0)
        proc.interrupt("wakeup")

    env.process(interrupter(env))
    env.run()
    assert log == [(2.0, "wakeup")]


def test_interrupt_on_finished_process_is_noop(env):
    def quick(env):
        yield env.timeout(0.1)

    proc = env.process(quick(env))
    env.run()
    proc.interrupt("late")  # must not raise
    env.run()


def test_run_until_stops_clock_exactly(env):
    def ticker(env):
        while True:
            yield env.timeout(1.0)

    env.process(ticker(env))
    env.run(until=5.5)
    assert env.now == 5.5
    assert env.pending > 0


def test_run_until_past_is_error(env):
    env.run(until=5.0)
    with pytest.raises(SimulationError):
        env.run(until=1.0)


def test_step_executes_single_callback(env):
    log = []

    def proc(env):
        yield env.timeout(1.0)
        log.append("done")

    env.process(proc(env))
    env.step()  # bootstrap resume
    assert log == []


def test_step_on_empty_schedule_raises(env):
    with pytest.raises(SimulationError):
        env.step()


def test_process_exception_without_waiter_propagates(env):
    def bad(env):
        yield env.timeout(1.0)
        raise KeyError("unhandled")

    env.process(bad(env))
    with pytest.raises(KeyError):
        env.run()


def test_process_exception_with_waiter_is_delivered(env):
    caught = []

    def bad(env):
        yield env.timeout(1.0)
        raise KeyError("delivered")

    def waiter(env):
        try:
            yield env.process(bad(env))
        except KeyError:
            caught.append(env.now)

    env.process(waiter(env))
    env.run()
    assert caught == [1.0]


def test_determinism_across_identical_runs():
    def run_once():
        env = Environment()
        trace = []

        def proc(env, name, delay):
            for i in range(3):
                yield env.timeout(delay)
                trace.append((round(env.now, 9), name, i))

        env.process(proc(env, "a", 0.3))
        env.process(proc(env, "b", 0.2))
        env.run()
        return trace

    assert run_once() == run_once()


def test_nested_timeout_chain_scales(env):
    """A long chain of events runs in bounded time and correct order."""
    count = 0

    def proc(env):
        nonlocal count
        for _ in range(10_000):
            yield env.timeout(0.001)
            count += 1

    env.process(proc(env))
    env.run()
    assert count == 10_000
    assert abs(env.now - 10.0) < 1e-6
