"""Tests for the slab scheduler, WakeableQueue, and CancelToken.

The slab scheduler coalesces same-(time, priority) bursts behind single
heap entries; these tests pin down the ordering contract the rest of the
simulator (and the seeded fingerprints) depend on: same-time FIFO within
a priority, priority dominating insertion order, and new same-time events
always running after everything already queued.
"""

from __future__ import annotations

import pytest

from repro.sim.kernel import (Event, Interrupt, SimulationError,
                              WakeableQueue)


# -- slab ordering ----------------------------------------------------------


def test_same_time_burst_dispatches_fifo(env):
    order = []
    events = []
    for i in range(50):
        ev = Event(env)
        ev.callbacks.append(lambda _e, i=i: order.append(i))
        events.append(ev)
    # a same-time burst: all succeed() calls land at t=0 back to back
    for ev in events:
        ev.succeed()
    env.run()
    assert order == list(range(50))


def test_priority_dominates_insertion_order(env):
    """Event dispatches (prio 0) run before scheduled calls (prio 1) at
    the same timestamp, regardless of which was scheduled first."""
    order = []
    env._schedule_call(lambda _a: order.append("call-early"), None)
    ev = Event(env)
    ev.callbacks.append(lambda _e: order.append("event"))
    ev.succeed()
    env._schedule_call(lambda _a: order.append("call-late"), None)
    env.run()
    assert order == ["event", "call-early", "call-late"]


def test_interleaved_keys_preserve_global_order(env):
    """A burst split across keys (the memo only coalesces consecutive
    same-key pushes) still dispatches in global schedule order."""
    order = []

    def tick(label, delay):
        yield env.timeout(delay)
        order.append(label)

    # interleave two future timestamps so neither forms one slab
    for i in range(4):
        env.process(tick(("a", i), 1.0))
        env.process(tick(("b", i), 2.0))
    env.run()
    assert order == [("a", i) for i in range(4)] + [("b", i) for i in range(4)]


def test_same_time_event_scheduled_during_dispatch_runs_last(env):
    order = []
    late = Event(env)
    late.callbacks.append(lambda _e: order.append("late"))

    first = Event(env)
    first.callbacks.append(lambda _e: (order.append("first"), late.succeed()))
    second = Event(env)
    second.callbacks.append(lambda _e: order.append("second"))
    first.succeed()
    second.succeed()
    env.run()
    # "late" was scheduled while the same-time slab was being consumed:
    # it must run after everything already queued at t=0
    assert order == ["first", "second", "late"]


def test_prio0_scheduled_during_prio1_jumps_ahead(env):
    """A same-time event dispatch scheduled from a prio-1 call runs
    before the remaining prio-1 entries (prio dominates seq)."""
    order = []
    ev = Event(env)
    ev.callbacks.append(lambda _e: order.append("event"))

    def call_a(_):
        order.append("a")
        ev.succeed()

    env._schedule_call(call_a, None)
    env._schedule_call(lambda _a: order.append("b"), None)
    env.run()
    assert order == ["a", "event", "b"]


def test_mixed_singletons_and_bursts_across_times(env):
    log = []

    def worker(name, delay):
        yield env.timeout(delay)
        log.append((env.now, name))

    env.process(worker("s1", 1.0))
    for i in range(3):
        env.process(worker(f"burst{i}", 2.0))
    env.process(worker("s2", 3.0))
    env.run()
    assert log == [(1.0, "s1"), (2.0, "burst0"), (2.0, "burst1"),
                   (2.0, "burst2"), (3.0, "s2")]


def test_pending_counts_slab_entries(env):
    for _ in range(5):
        env.timeout(1.0)   # one coalesced slab
    env.timeout(2.0)       # singleton
    assert env.pending == 6
    timers = [env.timeout(3.0) for _ in range(3)]
    assert env.pending == 9
    for t in timers:
        t.cancel()
    assert env.pending == 6


def test_compact_preserves_slab_and_singleton_order(env):
    fired = []
    live_burst = [env.timeout(2.0, value=i) for i in range(4)]
    for t in live_burst:
        t.callbacks.append(lambda e: fired.append(("burst", e.value)))
    lone = env.timeout(1.0)
    lone.callbacks.append(lambda e: fired.append(("lone", None)))
    dead = [env.timeout(1.5) for _ in range(100)]
    for t in dead:
        t.cancel()
    env._compact()
    assert env._cancelled_count == 0
    env.run()
    assert fired == [("lone", None)] + [("burst", i) for i in range(4)]


def test_step_walks_slab_entries_one_at_a_time(env):
    fired = []
    for i in range(3):
        t = env.timeout(1.0, value=i)
        t.callbacks.append(lambda e: fired.append(e.value))
    env.step()
    assert fired == [0]
    env.step()
    env.step()
    assert fired == [0, 1, 2]
    with pytest.raises(SimulationError):
        env.step()


# -- WakeableQueue ----------------------------------------------------------


def test_put_wakes_parked_consumer_same_time(env):
    queue = WakeableQueue(env)
    log = []

    def consumer():
        while True:
            if not queue:
                yield queue.wait()
            log.append((env.now, queue.take(10)))

    def producer():
        yield env.timeout(5.0)
        queue.put("a")
        yield env.timeout(3.0)
        queue.put("b")
        queue.put("c")

    env.process(consumer())
    env.process(producer())
    env.run(until=20.0)
    # consumer observed each put at the exact simulated put time
    assert log == [(5.0, ["a"]), (8.0, ["b", "c"])]


def test_threshold_waiter_fires_only_on_reaching_put(env):
    queue = WakeableQueue(env)
    fired = []
    kick = queue.wait(3)
    kick.callbacks.append(lambda _e: fired.append(env.now))
    queue.put(1)
    queue.put(2)
    env.run()
    assert fired == []          # below threshold: armed, silent
    queue.put(3)
    env.run()
    assert fired == [0.0]


def test_threshold_waiter_never_fires_retroactively(env):
    """A backlog >= threshold does not re-kick until a NEW put arrives —
    the max-batch contract of the consensus leader loops."""
    queue = WakeableQueue(env)
    for i in range(5):
        queue.put(i)
    fired = []
    kick = queue.wait(3)
    kick.callbacks.append(lambda _e: fired.append("kick"))
    env.run()
    assert fired == []
    queue.put(99)               # new put with len >= threshold: fires
    env.run()
    assert fired == ["kick"]


def test_cancel_wait_disarms(env):
    queue = WakeableQueue(env)
    waiter = queue.wait()
    queue.cancel_wait(waiter)
    queue.put("x")
    env.run()
    assert not waiter.triggered
    assert len(queue) == 1


def test_take_and_drain_are_fifo(env):
    queue = WakeableQueue(env)
    for i in range(6):
        queue.put(i)
    assert queue.take(4) == [0, 1, 2, 3]
    assert queue.drain() == [4, 5]
    assert not queue
    assert queue.take(3) == []


def test_interrupt_during_parked_wait(env):
    """Interrupting a consumer parked on queue.wait() raises Interrupt
    inside it at the current time and disarms cleanly."""
    queue = WakeableQueue(env)
    log = []

    def consumer():
        waiter = queue.wait()
        try:
            yield waiter
        except Interrupt as exc:
            queue.cancel_wait(waiter)
            log.append((env.now, "interrupted", exc.cause))
            return
        log.append((env.now, "woken"))

    proc = env.process(consumer())

    def interrupter():
        yield env.timeout(2.0)
        proc.interrupt("round-over")

    env.process(interrupter())
    env.run()
    assert log == [(2.0, "interrupted", "round-over")]
    # a later put must not resurrect the interrupted consumer
    queue.put("x")
    env.run()
    assert log == [(2.0, "interrupted", "round-over")]
    assert len(queue) == 1


# -- timeout_at -------------------------------------------------------------


def test_timeout_at_hits_exact_absolute_time(env):
    fired = []

    def proc():
        yield env.timeout(0.1)
        # accumulate a boundary the way a polling loop would
        boundary = env.now
        for _ in range(7):
            boundary += 0.001
        timer = env.timeout_at(boundary)
        yield timer
        fired.append(env.now == boundary)

    env.process(proc())
    env.run()
    assert fired == [True]


def test_timeout_at_past_rejected(env):
    env.timeout(1.0)
    env.run()
    with pytest.raises(ValueError):
        env.timeout_at(0.5)


def test_timeout_at_uses_pool(env):
    t1 = env.timeout(5.0)
    t1.cancel()
    env._compact()
    assert t1 in env._timeout_pool
    t2 = env.timeout_at(2.0, value="abs")
    assert t2 is t1
    env.run()
    assert t2.value == "abs" and env.now == 2.0


# -- CancelToken ------------------------------------------------------------


def test_token_cancels_live_timer(env):
    timer = env.timeout(5.0)
    token = timer.token()
    assert token.active
    assert token.cancel() is True
    assert not token.active
    env.run()
    assert not timer.triggered
    assert env.now == 0.0


def test_token_noop_after_fire(env):
    timer = env.timeout(1.0)
    token = timer.token()
    env.run()
    assert timer.triggered
    assert token.cancel() is False


def test_stale_token_cannot_kill_recycled_timer(env):
    """The ROADMAP hazard: cancel, recycle, then a stale re-cancel must
    NOT withdraw the unrelated live timer now inhabiting the object."""
    timer = env.timeout(5.0)
    token = timer.token()        # handle minted against the first lease
    other = timer.token()        # second handle on the same lease
    assert token.cancel() is True
    env._compact()               # reap into the pool
    fresh = env.timeout(2.0)     # recycles the same object: new lease
    assert fresh is timer
    # both stale handles are dead: neither may touch the new lease
    assert token.cancel() is False
    assert other.cancel() is False
    assert not other.active
    env.run()
    assert fresh.triggered       # the new lease fired untouched
    assert env.now == 2.0


def test_double_cancel_via_token_counts_once(env):
    timer = env.timeout(5.0)
    token = timer.token()
    assert token.cancel() is True
    assert token.cancel() is False
    assert env._cancelled_count == 1
