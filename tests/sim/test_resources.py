"""Tests for Resource and Store."""

import pytest

from repro.sim.kernel import Environment, Interrupt
from repro.sim.resources import Resource, Store


def test_resource_capacity_enforced(env):
    res = Resource(env, capacity=2)
    active = []
    peak = []

    def worker(env, name):
        yield from res.serve(1.0)
        active.append(name)

    def sampler(env):
        for _ in range(19):  # sample up to t=1.9 (workers finish at t=2)
            yield env.timeout(0.1)
            peak.append(res.in_use)

    for i in range(4):
        env.process(worker(env, i))
    env.process(sampler(env))
    env.run()
    assert len(active) == 4
    assert max(peak) == 2  # both slots busy, never more


def test_resource_fifo_order(env):
    res = Resource(env, capacity=1)
    order = []

    def worker(env, name):
        req = res.request()
        yield req
        order.append(name)
        yield env.timeout(0.1)
        res.release(req)

    for name in "abcd":
        env.process(worker(env, name))
    env.run()
    assert order == list("abcd")


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_release_without_request_raises(env):
    res = Resource(env, capacity=1)
    req = res.request()
    res.release(req)
    with pytest.raises(RuntimeError):
        res.release(req)


def test_resource_utilization_tracks_busy_time(env):
    res = Resource(env, capacity=1)

    def worker(env):
        yield from res.serve(2.0)
        yield env.timeout(2.0)  # idle period
        yield from res.serve(1.0)

    env.process(worker(env))
    env.run()
    assert env.now == 5.0
    assert res.utilization() == pytest.approx(3.0 / 5.0)


def test_resource_queue_length(env):
    res = Resource(env, capacity=1)
    observed = []

    def holder(env):
        req = res.request()
        yield req
        yield env.timeout(1.0)
        observed.append(res.queue_length)
        res.release(req)

    def waiter(env):
        yield from res.serve(0.1)

    env.process(holder(env))
    env.process(waiter(env))
    env.process(waiter(env))
    env.run()
    assert observed == [2]


def test_store_fifo_and_blocking(env):
    store = Store(env)
    got = []

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            got.append((env.now, item))

    def producer(env):
        yield env.timeout(1.0)
        store.put("a")
        store.put("b")
        yield env.timeout(1.0)
        store.put("c")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got == [(1.0, "a"), (1.0, "b"), (2.0, "c")]


def test_store_get_all_drains(env):
    store = Store(env)
    store.put(1)
    store.put(2)
    assert store.get_all() == [1, 2]
    assert len(store) == 0


def test_store_immediate_get_when_item_queued(env):
    store = Store(env)
    store.put("ready")
    ev = store.get()
    assert ev.triggered and ev.value == "ready"


def test_serve_releases_on_exception(env):
    """An exception thrown mid-service must still release the slot."""
    res = Resource(env, capacity=1)

    def holder(env):
        try:
            yield from res.serve(10.0)
        except Interrupt:
            pass  # serve()'s finally has released the slot

    def after(env):
        yield from res.serve(0.5)
        return env.now

    held = env.process(holder(env))

    def breaker(env):
        yield env.timeout(1.0)
        held.interrupt("stop")

    env.process(breaker(env))
    proc = env.process(after(env))
    env.run()
    assert proc.triggered
    assert res.in_use == 0
    assert proc.value == 1.5  # waited for the interrupt, then served 0.5
