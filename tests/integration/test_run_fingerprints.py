"""Seeded end-to-end RunResult fingerprints across the systems layer.

These are the PR-level equivalence gates for scheduler/consensus hot-path
work (slab scheduler, wake-on-proposal, flat chain objects): a seeded
closed-loop measurement of each system must produce a byte-identical
``RunResult`` before and after any perf refactor.  The points cover every
consensus substrate the systems layer threads proposals into: Raft (etcd,
tikv, quorum), IBFT (quorum), a Raft-backed shared log (fabric, veritas),
Percolator over multi-Raft (tidb), modelled Paxos + trusted 2PC
(spanner), and Tendermint (bigchaindb).

Every DB-side point (etcd, tikv, tidb, spanner) carries a **second seed**
(the ``*-seed23`` entries): a dispatch-order regression that happens to
cancel out at one seed cannot hide behind a single-seed coincidence.

The storage-engine points (PR 5) cover every Table 2 ``IndexKind``
through the pluggable engine layer — swapped engines are outcome-changing
by design (measured index-commit deltas), so each carries its own
fingerprint while the default-config points stay byte-identical to the
pre-engine seed values.

A mismatch means simulation *semantics* drifted — event ordering, batch
boundaries, or timer behaviour — not just wall-clock performance.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import SMOKE, run_point

#: (system, run_point overrides) -> exact reprs of the seeded RunResult.
#: Overrides may carry a ``seed`` key (default 11).
FINGERPRINTS = {
    "etcd": (
        dict(),
        {"tps": "14886.968050392341", "measured": 300,
         "latency": "0.003593996233866099", "aborted": 0},
    ),
    "etcd-seed23": (
        dict(seed=23),
        {"tps": "15086.19410627888", "measured": 300,
         "latency": "0.0034337363636792926", "aborted": 0},
    ),
    "tikv": (
        dict(),
        {"tps": "13368.568083358427", "measured": 300,
         "latency": "0.003680662781707489", "aborted": 0},
    ),
    "tikv-seed23": (
        dict(seed=23),
        {"tps": "13228.654035761656", "measured": 300,
         "latency": "0.003683198564910847", "aborted": 0},
    ),
    "quorum": (
        dict(),
        {"tps": "211.07009842368518", "measured": 300,
         "latency": "1.2094360582458945", "aborted": 0},
    ),
    "quorum-ibft": (
        dict(system_kwargs={"consensus": "ibft"}),
        {"tps": "203.58120437878924", "measured": 300,
         "latency": "1.2750026434150334", "aborted": 0},
    ),
    "fabric": (
        dict(),
        {"tps": "1131.4258880742786", "measured": 300,
         "latency": "0.1935465040231532", "aborted": 0},
    ),
    "tidb-skew": (
        dict(theta=0.9, ops_per_txn=2),
        {"tps": "140.44655946251711", "measured": 300,
         "latency": "0.07854862944570291", "aborted": 38},
    ),
    "tidb-skew-seed23": (
        dict(theta=0.9, ops_per_txn=2, seed=23),
        {"tps": "182.64467607020674", "measured": 300,
         "latency": "0.0942598491757825", "aborted": 39},
    ),
    # Spanner: 2 ops/txn so the cross-shard 2PC countdown chain (parallel
    # prepare fan-out -> decision round -> commit fan-out) is exercised,
    # not just the single-shard Paxos write.
    "spanner": (
        dict(num_nodes=6, ops_per_txn=2),
        {"tps": "9407.547763374374", "measured": 300,
         "latency": "0.011013308506666653", "aborted": 0},
    ),
    "spanner-seed23": (
        dict(num_nodes=6, ops_per_txn=2, seed=23),
        {"tps": "9451.093113429522", "measured": 300,
         "latency": "0.010821730319999985", "aborted": 0},
    ),
    "veritas": (
        dict(),
        {"tps": "17238.46382539664", "measured": 300,
         "latency": "0.003157095126561496", "aborted": 0},
    ),
    "bigchaindb": (
        dict(),
        {"tps": "1111.1111111110963", "measured": 300,
         "latency": "0.27375982632021884", "aborted": 0},
    ),
    # Tendermint idle-skip mode (skip_empty_blocks=True) is outcome-
    # changing by design, so it carries its own fingerprint rather than
    # matching the flag-off point above.
    "bigchaindb-idleskip": (
        dict(system_kwargs={"spec": {"skip_empty_blocks": True}}),
        {"tps": "1111.1111111110963", "measured": 300,
         "latency": "0.27394187432021866", "aborted": 0},
    ),
    # ---- storage-engine points (PR 5) ----------------------------------
    # Together with the defaults above, every Table 2 IndexKind carries a
    # seeded fingerprint: LSM (quorum-lsm; also tikv's default engine),
    # BTREE (etcd's default), SKIP_LIST (veritas' profile engine),
    # LSM_MPT (quorum-mpt), LSM_MBT (fabric-mbt), BTREE_MERKLE
    # (falcondb).  The quorum pair is the Fig. 12 ablation: the
    # authenticated MPT point is measurably slower than plain LSM, the
    # gap charged from the engine's measured hashes_computed deltas.
    "quorum-lsm": (
        dict(extras={"index": "lsm"}),
        {"tps": "253.2335638216496", "measured": 300,
         "latency": "1.1846167143957715", "aborted": 0},
    ),
    "quorum-mpt": (
        dict(extras={"index": "lsm+mpt"}),
        {"tps": "248.3648000661745", "measured": 300,
         "latency": "1.2122787892757716", "aborted": 0},
    ),
    "fabric-mbt": (
        dict(extras={"index": "lsm+mbt"}),
        {"tps": "1042.4101946938674", "measured": 300,
         "latency": "0.21218548258315303", "aborted": 0},
    ),
    # FalconDB hybrid: Tendermint backend + B-tree+Merkle overlay engine
    # built straight from its Table 2 profile row.
    "falcondb": (
        dict(),
        {"tps": "2140.6985989574905", "measured": 300,
         "latency": "0.0866140615719453", "aborted": 0},
    ),
    # Group-committed WAL on the DB-side apply path (extras["wal"]).
    "etcd-wal": (
        dict(extras={"wal": True}),
        {"tps": "8264.462809917415", "measured": 300,
         "latency": "0.008071964502307342", "aborted": 0},
    ),
}


@pytest.mark.parametrize("point", sorted(FINGERPRINTS))
def test_run_point_fingerprint(point):
    overrides, expected = FINGERPRINTS[point]
    system = point.split("-")[0]
    overrides = dict(overrides)
    seed = overrides.pop("seed", 11)
    result = run_point(system, scale=SMOKE, seed=seed, **overrides)
    observed = {
        "tps": repr(result.tps),
        "measured": result.measured,
        "latency": repr(result.stats.latency.mean),
        "aborted": result.stats.aborted,
    }
    assert observed == expected, f"seeded RunResult drifted for {point}"
