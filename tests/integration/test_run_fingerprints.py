"""Seeded end-to-end RunResult fingerprints across the systems layer.

These are the PR-level equivalence gates for scheduler/consensus hot-path
work (slab scheduler, wake-on-proposal, flat chain objects): a seeded
closed-loop measurement of each system must produce a byte-identical
``RunResult`` before and after any perf refactor.  The points cover every
consensus substrate the systems layer threads proposals into: Raft (etcd,
tikv, quorum), IBFT (quorum), a Raft-backed shared log (fabric, veritas),
Percolator over multi-Raft (tidb), modelled Paxos + trusted 2PC
(spanner), and Tendermint (bigchaindb).

Every DB-side point (etcd, tikv, tidb, spanner) carries a **second seed**
(the ``*-seed23`` entries): a dispatch-order regression that happens to
cancel out at one seed cannot hide behind a single-seed coincidence.

The storage-engine points (PR 5) cover every Table 2 ``IndexKind``
through the pluggable engine layer — swapped engines are outcome-changing
by design (measured index-commit deltas), so each carries its own
fingerprint while the default-config points stay byte-identical to the
pre-engine seed values.

The isolation-spectrum points (PR 8) pin every (system, weakened level)
pair on the ``extras["isolation"]`` axis at the isolation_ablation
table's YCSB-rmw parameters; ``isolation="serializable"`` has no pin of
its own because it must match the default-path pins byte for byte
(asserted by ``tests/integration/test_isolation.py``).

The registry itself lives in :mod:`repro.bench.fingerprints` so the
multiprocess sweep runner verifies the same pins; this module asserts
them one by one and guards the registry's shape so an edit can't
silently shrink the gate.

A mismatch means simulation *semantics* drifted — event ordering, batch
boundaries, or timer behaviour — not just wall-clock performance.
"""

from __future__ import annotations

import pytest

from repro.bench.fingerprints import FINGERPRINTS, expected_for_spec, \
    fingerprint_specs, verify_point
from repro.bench.harness import SMOKE, run_point, run_spec

_EXPECTED_POINTS = {
    "etcd", "etcd-seed23", "tikv", "tikv-seed23", "quorum", "quorum-ibft",
    "fabric", "tidb-skew", "tidb-skew-seed23", "spanner", "spanner-seed23",
    "veritas", "bigchaindb", "bigchaindb-idleskip", "quorum-lsm",
    "quorum-mpt", "fabric-mbt", "falcondb", "etcd-wal",
    "etcd-si", "etcd-rc", "tikv-si", "tikv-rc", "tidb-si", "tidb-rc",
    "quorum-si", "quorum-rc",
}


def test_registry_shape():
    assert set(FINGERPRINTS) == _EXPECTED_POINTS
    assert len(FINGERPRINTS) == 27


@pytest.mark.parametrize("point", sorted(FINGERPRINTS))
def test_run_point_fingerprint(point):
    overrides, expected = FINGERPRINTS[point]
    system = point.split("-")[0]
    overrides = dict(overrides)
    seed = overrides.pop("seed", 11)
    result = run_point(system, scale=SMOKE, seed=seed, **overrides)
    observed = {
        "tps": repr(result.tps),
        "measured": result.measured,
        "latency": repr(result.stats.latency.mean),
        "aborted": result.stats.aborted,
    }
    assert observed == expected, f"seeded RunResult drifted for {point}"


def test_every_fingerprint_spec_matches_its_pin():
    """Canonical matching round-trips: each registry spec finds its pin."""
    specs = fingerprint_specs()
    assert len(specs) == 27 + 3
    for spec in specs:
        pin = expected_for_spec(spec)
        assert pin is not None, f"no pin matched for {spec.label}"
        assert pin[0] == spec.key[0]


def test_verify_point_catches_drift():
    """verify_point passes the true result and flags a perturbed one."""
    spec = next(s for s in fingerprint_specs() if s.key == ("etcd",))
    result = run_spec(spec)
    assert verify_point(spec, result) is None
    result.tps += 1.0
    assert "drifted" in (verify_point(spec, result) or "")
