"""Seeded end-to-end RunResult fingerprints across the systems layer.

These are the PR-level equivalence gates for scheduler/consensus hot-path
work (slab scheduler, wake-on-proposal): a seeded closed-loop measurement
of each system must produce a byte-identical ``RunResult`` before and
after any perf refactor.  Eight points cover every consensus substrate
the systems layer threads proposals into: Raft (etcd, tikv, quorum),
IBFT (quorum), a Raft-backed shared log (fabric, veritas), Percolator
over multi-Raft (tidb), and Tendermint (bigchaindb).

A mismatch means simulation *semantics* drifted — event ordering, batch
boundaries, or timer behaviour — not just wall-clock performance.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import SMOKE, run_point

#: (system, run_point overrides) -> exact reprs of the seeded RunResult.
FINGERPRINTS = {
    "etcd": (
        dict(),
        {"tps": "14886.968050392341", "measured": 300,
         "latency": "0.003593996233866099", "aborted": 0},
    ),
    "tikv": (
        dict(),
        {"tps": "13368.568083358427", "measured": 300,
         "latency": "0.003680662781707489", "aborted": 0},
    ),
    "quorum": (
        dict(),
        {"tps": "211.07009842368518", "measured": 300,
         "latency": "1.2094360582458945", "aborted": 0},
    ),
    "quorum-ibft": (
        dict(system_kwargs={"consensus": "ibft"}),
        {"tps": "203.58120437878924", "measured": 300,
         "latency": "1.2750026434150334", "aborted": 0},
    ),
    "fabric": (
        dict(),
        {"tps": "1131.4258880742786", "measured": 300,
         "latency": "0.1935465040231532", "aborted": 0},
    ),
    "tidb-skew": (
        dict(theta=0.9, ops_per_txn=2),
        {"tps": "140.44655946251711", "measured": 300,
         "latency": "0.07854862944570291", "aborted": 38},
    ),
    "veritas": (
        dict(),
        {"tps": "17238.46382539664", "measured": 300,
         "latency": "0.003157095126561496", "aborted": 0},
    ),
    "bigchaindb": (
        dict(),
        {"tps": "1111.1111111110963", "measured": 300,
         "latency": "0.27375982632021884", "aborted": 0},
    ),
    # Tendermint idle-skip mode (skip_empty_blocks=True) is outcome-
    # changing by design, so it carries its own fingerprint rather than
    # matching the flag-off point above.
    "bigchaindb-idleskip": (
        dict(system_kwargs={"spec": {"skip_empty_blocks": True}}),
        {"tps": "1111.1111111110963", "measured": 300,
         "latency": "0.27394187432021866", "aborted": 0},
    ),
}


@pytest.mark.parametrize("point", sorted(FINGERPRINTS))
def test_run_point_fingerprint(point):
    overrides, expected = FINGERPRINTS[point]
    system = point.split("-")[0]
    result = run_point(system, scale=SMOKE, seed=11, **overrides)
    observed = {
        "tps": repr(result.tps),
        "measured": result.measured,
        "latency": repr(result.stats.latency.mean),
        "aborted": result.stats.aborted,
    }
    assert observed == expected, f"seeded RunResult drifted for {point}"
