"""Isolation axis integration: differential pins, config guards, chaos.

The spectrum is only trustworthy if the serializable end of it IS the
default path: routing a run through the isolation-aware schedulers with
``extras={"isolation": "serializable"}`` must reproduce the default
run byte-for-byte on every system that supports the axis.  The guards
then pin the failure modes (typo'd key, unsupported system), and the
chaos test closes the certification loop under faults.
"""

import pytest

from repro.bench.harness import SMOKE, run_point
from repro.chaos import (NoAnomalies, Partition, Scenario,
                         default_invariants, run_chaos_point)
from repro.core.builder import ISOLATION_SYSTEMS


def _fingerprint(result):
    return {
        "tps": repr(result.tps),
        "measured": result.measured,
        "latency": repr(result.stats.latency.mean),
        "aborted": result.stats.aborted,
    }


_POINT_PARAMS = {
    "etcd": {},
    "tikv": {},
    "quorum": {},
    # The skewed rmw point — the one whose retries would expose any
    # scheduler-path divergence the uniform default hides.
    "tidb": {"mode": "rmw", "theta": 0.9, "ops_per_txn": 2},
}


@pytest.mark.parametrize("system", sorted(ISOLATION_SYSTEMS))
def test_explicit_serializable_is_byte_identical_to_default(system):
    """Satellite guarantee: the isolation plumbing (history checker,
    shadow stamps, scheduler dispatch) is observation-only at the
    serializable level — same seed, same fingerprint."""
    params = _POINT_PARAMS[system]
    default = run_point(system, scale=SMOKE, seed=11, **params)
    explicit = run_point(system, scale=SMOKE, seed=11,
                         extras={"isolation": "serializable"}, **params)
    assert _fingerprint(explicit) == _fingerprint(default)
    # ...and the observation itself certifies the default path.
    assert explicit.extras["serializable_history"] is True


def test_typoed_isolation_key_rejected():
    with pytest.raises(ValueError, match="isolaton"):
        run_point("etcd", scale=SMOKE, extras={"isolaton": "snapshot"})


def test_unknown_level_rejected():
    with pytest.raises(ValueError, match="isolation"):
        run_point("etcd", scale=SMOKE,
                  extras={"isolation": "repeatable_read"})


def test_unsupported_system_rejected():
    assert "fabric" not in ISOLATION_SYSTEMS
    with pytest.raises(ValueError, match="fabric"):
        run_point("fabric", scale=SMOKE, extras={"isolation": "snapshot"})


# -- chaos: certificates hold under faults ------------------------------------

_SCENARIO = Scenario(
    name="etcd-si-partition",
    steps=(Partition(at=1.0, group_a=("etcd1",),
                     group_b=("etcd0", "etcd2", "etcd3", "etcd4"),
                     until=2.5),),
    settle=2.5)


def test_chaos_no_anomalies_invariant_holds_for_robust_config():
    """The conserved SmallBank mix is certified robust against SI, so
    the no-anomalies invariant must survive a partition storm."""
    res = run_chaos_point(
        "etcd", _SCENARIO, seed=11,
        extras={"wal": True, "isolation": "snapshot"},
        invariants=default_invariants(conserved=True, anomalies=True))
    assert res.ok, f"invariant violations: {res.violations}"
    assert res.checks > 0


def test_chaos_no_anomalies_requires_history_checker():
    """Arming the invariant without the isolation axis is a
    misconfiguration the suite must surface, not silently pass."""
    res = run_chaos_point("etcd", _SCENARIO, seed=11,
                          extras={"wal": True},
                          invariants=[NoAnomalies()])
    assert not res.ok
    assert any("no history checker" in v for v in res.violations)
