"""Integration tests: invariants that must hold *across* systems.

These exercise full submit-to-commit paths on several systems at once and
check end-to-end properties: money conservation under Smallbank, ledger
integrity after load, convergence of replicated state, and the
blockchain/database dichotomy in storage behaviour.
"""

import pytest

from repro.sim import Environment
from repro.systems import (EtcdSystem, FabricSystem, QuorumSystem,
                           SystemConfig, TiDBSystem, build_hybrid)
from repro.txn import Transaction, TxnStatus
from repro.workloads import (DriverConfig, SmallbankConfig,
                             SmallbankWorkload, YcsbConfig, YcsbWorkload,
                             decode_balance, run_closed_loop)

CONFIG = SystemConfig(num_nodes=3)
DRIVER = DriverConfig(clients=24, warmup_txns=10, measure_txns=200,
                      max_sim_time=120)


def total_money(state, workload, accounts):
    total = 0
    for i in range(accounts):
        for key in (workload.checking(i), workload.savings(i)):
            value, _ver = state.get(key)
            total += decode_balance(value if value else b"")
    return total


@pytest.mark.parametrize("system_cls,state_attr", [
    (QuorumSystem, "state"),
    (EtcdSystem, "state"),
])
def test_smallbank_conserves_money_serial_systems(system_cls, state_attr):
    """Serial-execution systems must conserve total balance exactly
    (Smallbank moves money around; nothing mints or burns it except
    write_check/deposit/transact which change totals deterministically —
    so we run only send_payment/amalgamate)."""
    accounts = 40
    env = Environment()
    system = system_cls(env, CONFIG)
    workload = SmallbankWorkload(SmallbankConfig(num_accounts=accounts,
                                                 theta=0.0, seed=11))
    system.load(workload.initial_records())
    before = total_money(getattr(system, state_attr), workload, accounts)

    def next_txn(client):
        if workload.rng.random() < 0.5:
            return workload.send_payment(client)
        return workload.amalgamate(client)

    run_closed_loop(env, system, next_txn, DRIVER)
    after = total_money(getattr(system, state_attr), workload, accounts)
    assert after == before


def test_smallbank_conserves_money_tidb():
    """Concurrent system with retries/aborts must still conserve money."""
    accounts = 40
    env = Environment()
    system = TiDBSystem(env, CONFIG)
    workload = SmallbankWorkload(SmallbankConfig(num_accounts=accounts,
                                                 theta=0.0, seed=12))
    system.load(workload.initial_records())
    before = total_money(system.cluster.state, workload, accounts)

    def next_txn(client):
        return workload.send_payment(client)

    run_closed_loop(env, system, next_txn, DRIVER)
    after = total_money(system.cluster.state, workload, accounts)
    assert after == before


def test_smallbank_conserves_money_fabric():
    """OCC aborts must leave no partial writes behind."""
    accounts = 40
    env = Environment()
    system = FabricSystem(env, CONFIG)
    workload = SmallbankWorkload(SmallbankConfig(num_accounts=accounts,
                                                 theta=0.0, seed=13))
    system.load(workload.initial_records())
    before = total_money(system.peers[0].state, workload, accounts)

    def next_txn(client):
        return workload.send_payment(client)

    run_closed_loop(env, system, next_txn, DRIVER)
    for peer in system.peers:
        assert total_money(peer.state, workload, accounts) == before


def test_fabric_peers_states_converge():
    env = Environment()
    system = FabricSystem(env, CONFIG)
    wl = YcsbWorkload(YcsbConfig(record_count=400, record_size=64))
    system.load(wl.initial_records())
    run_closed_loop(env, system, wl.next_update, DRIVER)
    env.run(until=env.now + 10)  # drain in-flight blocks
    reference = system.peers[0].state.snapshot()
    for peer in system.peers[1:]:
        snap = peer.state.snapshot()
        diverging = {k for k in reference
                     if reference[k][0] != snap.get(k, (None, 0))[0]}
        assert not diverging


def test_same_workload_same_final_state_across_serial_systems():
    """Two serial systems given the same committed sequence end at the
    same logical state (determinism across implementations)."""
    def run(system_cls):
        env = Environment()
        system = system_cls(env, CONFIG)
        system.load({f"k{i}": b"0" for i in range(20)})
        txns = [Transaction.write(f"k{i % 20}", f"v{i}".encode())
                for i in range(60)]
        for txn in txns:
            system.submit(txn)
        env.run(until=60)
        assert all(t.status is TxnStatus.COMMITTED for t in txns)
        return {k: system.state.get(k)[0]
                for k in (f"k{i}" for i in range(20))}

    assert run(EtcdSystem) == run(QuorumSystem)


def test_blockchains_keep_history_databases_do_not():
    """The Section 3.3 storage dichotomy, measured end to end."""
    env = Environment()
    quorum = QuorumSystem(env, CONFIG)
    quorum.load({"k": b"0"})
    txns = [Transaction.write("k", f"v{i}".encode()) for i in range(30)]
    for t in txns:
        quorum.submit(t)
    env.run(until=30)
    # the ledger retains every overwritten version
    assert quorum.ledger.total_txns() == 30
    assert quorum.ledger.verify()

    env2 = Environment()
    etcd = EtcdSystem(env2, CONFIG)
    etcd.load({"k": b"0"})
    txns2 = [Transaction.write("k", f"v{i}".encode()) for i in range(30)]
    for t in txns2:
        etcd.submit(t)
    env2.run(until=30)
    # the database holds only the latest state
    assert len(etcd.state) == 1
    assert etcd.state.get("k")[0] == b"v29"


def test_hybrid_ledger_grows_with_commits():
    env = Environment()
    system = build_hybrid(env, "veritas", SystemConfig(num_nodes=4))
    system.load({f"k{i}": b"0" for i in range(50)})
    txns = [Transaction.write(f"k{i % 50}", b"x" * 64) for i in range(200)]
    for t in txns:
        system.submit(t)
    env.run(until=60)
    committed = sum(1 for t in txns if t.status is TxnStatus.COMMITTED)
    assert committed == 200
    assert system.ledger.height >= 2
    assert system.ledger.verify()


def test_deterministic_run_same_seed():
    """Whole-system determinism: identical seeds, identical results."""
    def run():
        env = Environment()
        system = EtcdSystem(env, SystemConfig(num_nodes=3, seed=77))
        wl = YcsbWorkload(YcsbConfig(record_count=300, record_size=64,
                                     seed=78))
        system.load(wl.initial_records())
        result = run_closed_loop(env, system, wl.next_update,
                                 DriverConfig(clients=16, warmup_txns=10,
                                              measure_txns=150))
        return result.tps, result.mean_latency

    assert run() == run()
