"""Equivalence gate for the conservative-lookahead parallel kernel.

``AhlSystem(shard_lookahead=True)`` charges the hub<->shard network hops
in a single heap; ``AhlSystem(parallel=True)`` runs the same model with
one worker process per shard behind a
:class:`repro.sim.parallel.ShardCoupler`.  The two must produce
byte-identical :class:`~repro.workloads.driver.RunResult`\\ s — same
``repr`` of every float — on a Fig. 14 topology across seeds, including
the hard cases: cross-shard BFT-2PC legs and reconfiguration pauses
that synchronize the shards into post-pause lockstep (where same-instant
completion ordering is decided by causal lineage, not timestamps).
"""

import types

import pytest

from repro.bench.harness import Scale, run_point
from repro.sim import parallel as par
from repro.sim.costs import DEFAULT_COSTS
from repro.sim.kernel import Environment

# Small derived scale: the parallel run pays one barrier round-trip per
# 150 microsecond lookahead window, so keep the simulated span short.
DIFF_SCALE = Scale("diff", record_count=2_000, warmup_txns=10,
                   measure_txns=80, max_sim_time=60.0)

# Reconfiguration every 0.2 s (pause 0.05 s) so epochs land inside the
# measured window — the paper-default 3 s period would never fire here.
FAST_RECONFIG = DEFAULT_COSTS.derive(ahl_reconfig_period=0.2,
                                     ahl_reconfig_pause=0.05)


def _fields(result):
    return (repr(result.tps), result.measured, repr(result.mean_latency),
            result.stats.aborted, result.timeouts, repr(result.elapsed),
            repr(result.extras.get("completed_tps")))


def _run_pair(seed, ops_per_txn, costs=None):
    kwargs = dict(scale=DIFF_SCALE, num_nodes=6, clients=24, mode="rmw",
                  seed=seed, ops_per_txn=ops_per_txn)
    if costs is not None:
        kwargs["costs"] = costs
    ref = run_point("ahl", system_kwargs={"shard_lookahead": True},
                    **kwargs)
    par = run_point("ahl", system_kwargs={"parallel": True}, **kwargs)
    return ref, par


@pytest.mark.parametrize("seed", [11, 23])
def test_parallel_matches_single_heap(seed):
    ref, par = _run_pair(seed, ops_per_txn=1)
    assert ref.measured == DIFF_SCALE.measure_txns
    assert _fields(ref) == _fields(par)


def test_parallel_matches_with_cross_shard_and_pauses():
    # ops_per_txn=2 forces cross-shard BFT-2PC; the fast reconfig costs
    # put several pause epochs inside the run.  Both the single-heap and
    # the parallel build must agree on everything, including how many
    # transactions went cross-shard.
    ref, par = _run_pair(seed=23, ops_per_txn=2, costs=FAST_RECONFIG)
    assert ref.extras["system"].cross_shard_txns > 0
    assert ref.extras["system"].cross_shard_txns \
        == par.extras["system"].cross_shard_txns
    assert _fields(ref) == _fields(par)


# Fig-14 stretch scale: enough transactions that 256 shards see real
# concurrency, small enough that the whole matrix runs in seconds.
FIG14_SCALE = Scale("fig14diff", record_count=2_000, warmup_txns=50,
                    measure_txns=150, max_sim_time=60.0)


@pytest.mark.parametrize("shards", [4, 16, 64, 256])
@pytest.mark.parametrize("seed", [11, 23])
def test_parallel_matches_at_scale(shards, seed):
    # The hundreds-of-shards gate: byte-identical RunResults at every
    # Fig-14 shard count, cross-shard 2PC on (ops_per_txn=2).  High
    # shard counts are where same-instant completion collisions actually
    # happen — the 2-shard tests never exercised the lineage ordering.
    kwargs = dict(scale=FIG14_SCALE, num_nodes=3 * shards, seed=seed,
                  mode="rmw", ops_per_txn=2, theta=0.0)
    ref = run_point("ahl", system_kwargs={"shard_lookahead": True}, **kwargs)
    run = run_point("ahl", system_kwargs={"parallel": True}, **kwargs)
    assert _fields(ref) == _fields(run)


def test_worker_pool_persists_across_runs():
    par.shutdown_pool()
    kwargs = dict(scale=DIFF_SCALE, num_nodes=6, clients=24, mode="rmw",
                  seed=11, ops_per_txn=1,
                  system_kwargs={"parallel": True})
    first = run_point("ahl", **kwargs)
    pids = [proc.pid for proc in par._POOL.procs]
    second = run_point("ahl", **kwargs)
    # Same worker processes served both runs (the per-run reset frame
    # rebuilt their LPs in place), and the rerun is byte-identical.
    assert [proc.pid for proc in par._POOL.procs] == pids
    assert _fields(first) == _fields(second)
    par.shutdown_pool()


def test_dead_worker_raises_instead_of_hanging():
    par.shutdown_pool()
    env = Environment()
    coupler = par.ShardCoupler(env, num_shards=2, window=0.00015,
                               period=30.0, pause=9.0)
    coupler.exec_event(0, 0.001)
    coupler.end_window(0.0)          # attach + first exchange succeeds
    for proc in par._POOL.procs:
        proc.terminate()
        proc.join(timeout=5)
    coupler.exec_event(1, 0.001)
    with pytest.raises(RuntimeError,
                       match="died|closed its pipe|is gone"):
        coupler.end_window(0.0003)   # detected within a poll interval
    coupler.shutdown()
    par.shutdown_pool()


def test_worker_crash_ships_traceback():
    par.shutdown_pool()
    env = Environment()
    coupler = par.ShardCoupler(env, num_shards=2, window=0.00015,
                               period=30.0, pause=9.0)
    # Shard 7 exists in no worker's LP table: the worker raises KeyError,
    # which must arrive hub-side as a RuntimeError carrying the worker's
    # traceback — not as a barrier deadlock.
    coupler.exec_event(7, 0.001)
    with pytest.raises(RuntimeError, match="KeyError"):
        coupler.end_window(0.0)
    coupler.shutdown()
    par.shutdown_pool()


def test_nested_worker_pool_refused(monkeypatch):
    # A daemonic pool worker (a --jobs sweep process) must not try to
    # spawn shard workers: clear refusal, not a spawn bomb.
    monkeypatch.setattr(par.mp, "current_process",
                        lambda: types.SimpleNamespace(daemon=True))
    with pytest.raises(RuntimeError, match="nested"):
        par._WorkerPool(1)


def test_lookahead_mode_defaults_off():
    # The seeded fingerprints pin the default (hopless) model: a plain
    # build must not grow hops or a coupler.
    ref = run_point("ahl", scale=DIFF_SCALE, num_nodes=6, clients=24,
                    mode="rmw", seed=11)
    system = ref.extras["system"]
    assert system.shard_lookahead is False
    assert system.coupler is None


def test_shard_domains_metadata():
    from repro.sim.kernel import Environment
    from repro.core.builder import build_system
    from repro.systems.base import SystemConfig

    env = Environment()
    ahl = build_system(env, "ahl", SystemConfig(num_nodes=6, seed=0),
                       shard_lookahead=True)
    domains = ahl.shard_domains()
    assert domains["domains"] == ["ahl-shard-0", "ahl-shard-1"]
    assert domains["lookahead"] == ahl.network.min_delay > 0.0

    # Default (hopless) model: no window to exploit.
    env2 = Environment()
    plain = build_system(env2, "ahl", SystemConfig(num_nodes=6, seed=0))
    assert plain.shard_domains()["lookahead"] == 0.0

    # tikv / spanner name their decomposition but are not
    # network-isolated: lookahead zero, parallel execution not licensed.
    for name in ("tikv", "spanner"):
        env3 = Environment()
        sys_obj = build_system(env3, name, SystemConfig(num_nodes=6, seed=0))
        meta = sys_obj.shard_domains()
        assert len(meta["domains"]) > 0
        assert meta["lookahead"] == 0.0
