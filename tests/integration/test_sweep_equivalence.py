"""Serial-vs-parallel equivalence for the multiprocess figure sweep.

The sweep's contract is that ``--jobs N`` changes wall-clock time and
nothing else: the merged trajectory must be field-for-field identical to
a serial run except the wall-clock fields named in
:data:`repro.bench.sweep.WALL_CLOCK_FIELDS`.  The fingerprint figure is
the gate figure here — its 30 points (27 clean pins + 3 chaos digests)
each verify against the seeded registry inside the sweep itself.
"""

import json

from repro.bench.harness import SMOKE
from repro.bench.sweep import (WALL_CLOCK_FIELDS, deterministic_view,
                               enumerate_grid, format_inventory, run_sweep)


def _quiet(_line):
    pass


def test_serial_and_parallel_sweeps_merge_identically():
    serial = run_sweep(scale=SMOKE, jobs=1, figures=["fingerprints"],
                       progress=_quiet)
    parallel = run_sweep(scale=SMOKE, jobs=2, figures=["fingerprints"],
                         progress=_quiet)
    assert serial["verified"] == 30
    assert serial["mismatches"] == []
    assert parallel["verified"] == 30
    # byte-identical modulo wall clocks: compare the canonical JSON of
    # the deterministic views, which is what lands in SWEEP_*.json
    view_s = json.dumps(deterministic_view(serial), default=str, indent=2)
    view_p = json.dumps(deterministic_view(parallel), default=str, indent=2)
    assert view_s == view_p
    # and the excluded fields really are just the wall-clock section
    assert set(serial) - set(deterministic_view(serial)) \
        <= set(WALL_CLOCK_FIELDS)


def test_enumerate_grid_covers_every_figure():
    specs = enumerate_grid(SMOKE)
    figures = {spec.figure for spec in specs}
    assert figures == {"fig4", "fig5", "fig6", "fig7", "fig8", "tab4",
                       "tab5", "fig9", "fig10", "fig11", "fig12", "fig13",
                       "fig14", "fig15", "isolation_ablation",
                       "openloop_knee", "fig14_scaling", "fingerprints"}
    labels = [spec.label for spec in specs]
    assert len(labels) == len(set(labels)), "duplicate point labels"
    # the self-check figure carries all 30 pins
    assert sum(1 for s in specs if s.figure == "fingerprints") == 30


def test_openloop_knee_serial_parallel_equivalence():
    serial = run_sweep(scale=SMOKE, jobs=1, figures=["openloop_knee"],
                       progress=_quiet)
    parallel = run_sweep(scale=SMOKE, jobs=2, figures=["openloop_knee"],
                         progress=_quiet)
    assert serial["mismatches"] == []
    view_s = json.dumps(deterministic_view(serial), default=str, indent=2)
    view_p = json.dumps(deterministic_view(parallel), default=str, indent=2)
    assert view_s == view_p
    knee = serial["artifacts"]["openloop_knee"]["knee"]
    # The open-loop signature: offered load outruns goodput at the top
    # of the sweep while the CO-safe tail diverges.
    assert knee["saturated"] is True
    assert knee["p99_divergence"] > 5.0


def test_inventory_lists_without_running():
    text = format_inventory(SMOKE, figures=["fig14", "fingerprints"])
    assert "fig14" in text
    assert "fingerprints:etcd" in text
    assert "weight=" in text
