"""Open-loop driver: arrival processes, CO-safe latency, determinism."""

import random

import pytest

from repro.sim.kernel import Environment
from repro.workloads import OpenLoopConfig, YcsbConfig, YcsbWorkload, \
    run_open_loop
from repro.workloads.openloop import (DAY_TRACE, bursty_arrivals,
                                      diurnal_arrivals, make_schedule,
                                      poisson_arrivals)


class QuickSystem:
    """Commits every submission after a fixed service delay."""

    def __init__(self, env, delay=0.002):
        self.env = env
        self.delay = delay

    def submit(self, txn):
        ev = self.env.event()
        txn.submitted_at = self.env.now
        timer = self.env.timeout(self.delay)

        def done(_t, txn=txn, ev=ev):
            txn.mark_committed()
            ev.succeed(txn)

        timer.callbacks.append(done)
        return ev

    submit_query = submit


class StallSystem(QuickSystem):
    """Serves instantly except during a dead window [start, end).

    Submissions landing in the window complete only at its end — the
    classic coordinated-omission trap: a closed-loop client would simply
    not issue during the stall, and completion-relative latency stays
    tiny either way.
    """

    def __init__(self, env, delay=0.002, stall=(0.5, 1.5)):
        super().__init__(env, delay)
        self.stall = stall

    def submit(self, txn):
        ev = self.env.event()
        txn.submitted_at = self.env.now
        start, end = self.stall
        wake = self.delay if not start <= self.env.now < end \
            else (end - self.env.now) + self.delay
        timer = self.env.timeout(wake)

        def done(_t, txn=txn, ev=ev):
            txn.mark_committed()
            ev.succeed(txn)

        timer.callbacks.append(done)
        return ev

    submit_query = submit


def _cfg(**kw):
    base = dict(rate=2000.0, duration=1.0, warmup=0.25, seed=11,
                txn_timeout=2.0, max_sim_time=30.0)
    base.update(kw)
    return OpenLoopConfig(**base)


def _workload(seed=12):
    return YcsbWorkload(YcsbConfig(record_count=100, seed=seed))


def test_every_arrival_gets_a_fate(env):
    res = run_open_loop(env, QuickSystem(env), _workload().next_update,
                        _cfg())
    assert res.offered > 0
    assert res.offered == res.completed + res.timeouts + res.dropped
    assert res.unresolved == 0
    assert res.committed == res.completed    # nothing aborts here
    assert res.goodput == pytest.approx(res.committed / 1.0)
    assert res.slo_attainment == 1.0
    assert "wall_hit" not in res.extras


@pytest.mark.parametrize("arrival", ["poisson", "bursty", "diurnal"])
def test_seeded_digest_is_byte_identical_twice(arrival):
    digests = []
    for _ in range(2):
        env = Environment()
        res = run_open_loop(env, QuickSystem(env),
                            _workload().next_update,
                            _cfg(arrival=arrival))
        digests.append(res.result_digest())
    assert digests[0] == digests[1]


def test_different_seed_different_digest():
    outs = []
    for seed in (11, 23):
        env = Environment()
        res = run_open_loop(env, QuickSystem(env),
                            _workload().next_update, _cfg(seed=seed))
        outs.append(res.result_digest())
    assert outs[0] != outs[1]


def test_coordinated_omission_regression(env):
    """A 1s server stall must show up in CO-safe p99, and does not in
    the submission-relative view (the naive measurement's blind spot)."""
    system = StallSystem(env, stall=(0.5, 1.5))
    res = run_open_loop(
        env, system, _workload().next_update,
        _cfg(rate=500.0, duration=2.0, warmup=0.1, txn_timeout=5.0,
             max_in_flight=8, admit_queue=10_000))
    assert res.timeouts == 0 and res.dropped == 0
    # Arrivals during the stall waited in the admit queue; from intended
    # arrival they saw up to ~1s, from actual submission almost nothing.
    assert res.latency.pct(99) > 0.5
    assert res.service_latency.pct(99) < 0.1
    assert res.latency.pct(99) > 20 * res.service_latency.pct(99)
    assert res.late_admitted > 0
    assert res.slo_attainment < 1.0


def test_percentiles_ordered(env):
    res = run_open_loop(env, StallSystem(env, stall=(0.5, 0.9)),
                        _workload().next_update,
                        _cfg(max_in_flight=16))
    assert res.p50 <= res.p99 <= res.p999 <= res.latency.max


def test_drops_when_queue_full(env):
    system = StallSystem(env, stall=(0.3, 5.0))
    res = run_open_loop(
        env, system, _workload().next_update,
        _cfg(rate=1000.0, duration=1.0, warmup=0.1, txn_timeout=20.0,
             max_in_flight=4, admit_queue=16, max_sim_time=60.0))
    assert res.dropped > 0
    assert res.offered == res.completed + res.timeouts + res.dropped
    assert res.slo_attainment < 0.5


def test_timeouts_when_server_stalls_past_timeout(env):
    system = StallSystem(env, stall=(0.3, 10.0))
    res = run_open_loop(
        env, system, _workload().next_update,
        _cfg(rate=200.0, duration=1.0, warmup=0.1, txn_timeout=0.5,
             max_in_flight=10_000, max_sim_time=60.0))
    assert res.timeouts > 0
    assert res.offered == res.completed + res.timeouts + res.dropped


def test_wall_truncation_is_surfaced(env):
    system = StallSystem(env, stall=(0.3, 100.0))
    res = run_open_loop(
        env, system, _workload().next_update,
        _cfg(rate=200.0, duration=1.0, warmup=0.1, txn_timeout=50.0,
             max_in_flight=10_000, max_sim_time=2.0))
    assert res.extras.get("wall_hit") is True
    assert res.unresolved > 0


def test_explicit_schedule_replay(env):
    schedule = [0.1, 0.2, 0.3, 0.35, 0.35, 0.4]
    res = run_open_loop(env, QuickSystem(env), _workload().next_update,
                        _cfg(warmup=0.0, duration=1.0),
                        schedule=schedule)
    assert res.offered == len(schedule)
    assert res.committed == len(schedule)


def test_empty_schedule(env):
    res = run_open_loop(env, QuickSystem(env), _workload().next_update,
                        _cfg(), schedule=[])
    assert res.offered == 0
    assert res.goodput == 0.0
    assert "wall_hit" not in res.extras


def test_unknown_arrival_process_raises(env):
    with pytest.raises(ValueError):
        run_open_loop(env, QuickSystem(env), _workload().next_update,
                      _cfg(arrival="lognormal"))


# -- arrival-process statistics (no simulation) ---------------------------

def test_poisson_mean_rate():
    rng = random.Random(7)
    arr = poisson_arrivals(1000.0, 20.0, rng)
    assert len(arr) == pytest.approx(20_000, rel=0.05)
    assert arr == sorted(arr)


def test_bursty_mean_rate_and_burstiness():
    rng = random.Random(7)
    arr = bursty_arrivals(1000.0, 20.0, rng, sources=4)
    assert len(arr) == pytest.approx(20_000, rel=0.15)
    assert arr == sorted(arr)
    # Index of dispersion of counts per 100ms bin: ~1 for Poisson, well
    # above 1 for the on-off superposition.
    bins = [0] * 200
    for t in arr:
        bins[min(int(t / 0.1), 199)] += 1
    mean = sum(bins) / len(bins)
    var = sum((b - mean) ** 2 for b in bins) / len(bins)
    assert var / mean > 2.0


def test_diurnal_follows_trace():
    rng = random.Random(7)
    # Two-slice trace: second half three times the intensity of the first.
    arr = diurnal_arrivals(1000.0, 10.0, rng, trace=(1.0, 3.0))
    first = sum(1 for t in arr if t < 5.0)
    second = len(arr) - first
    assert second / max(first, 1) == pytest.approx(3.0, rel=0.15)
    assert len(arr) == pytest.approx(10_000, rel=0.1)
    assert len(DAY_TRACE) == 24


def test_make_schedule_is_seed_deterministic():
    cfg = _cfg(arrival="bursty")
    assert make_schedule(cfg) == make_schedule(cfg)
    assert make_schedule(cfg) != make_schedule(_cfg(arrival="bursty",
                                                    seed=99))
