"""Tests for Zipf, YCSB, Smallbank generators and the driver."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.txn import OpType
from repro.workloads import (DriverConfig, SmallbankConfig, SmallbankWorkload,
                             YcsbConfig, YcsbWorkload, ZipfGenerator,
                             decode_balance, encode_balance, run_closed_loop)
from repro.workloads.smallbank import INITIAL_BALANCE


# -- Zipf ------------------------------------------------------------------------

def test_zipf_uniform_when_theta_zero():
    gen = ZipfGenerator(1000, theta=0.0, rng=random.Random(1))
    draws = [gen.next() for _ in range(20_000)]
    counts = [0] * 1000
    for d in draws:
        counts[d] += 1
    assert max(counts) < 60  # no hot key under uniform


def test_zipf_skews_at_theta_one():
    gen = ZipfGenerator(1000, theta=1.0, rng=random.Random(2),
                        scrambled=False)
    draws = [gen.next_rank() for _ in range(50_000)]
    top = sum(1 for d in draws if d == 0) / len(draws)
    expected = 1.0 / sum(1 / i for i in range(1, 1001))  # 1/H_1000
    assert abs(top - expected) < 0.02


def test_zipf_probability_sums_to_one():
    gen = ZipfGenerator(100, theta=0.8)
    total = sum(gen.probability(r) for r in range(100))
    assert total == pytest.approx(1.0)


def test_zipf_probability_monotone_in_rank():
    gen = ZipfGenerator(100, theta=0.6)
    probs = [gen.probability(r) for r in range(100)]
    assert all(probs[i] >= probs[i + 1] for i in range(99))


def test_zipf_validation():
    with pytest.raises(ValueError):
        ZipfGenerator(0)
    with pytest.raises(ValueError):
        ZipfGenerator(10, theta=-1)


def test_zipf_draws_in_range():
    gen = ZipfGenerator(37, theta=1.0, rng=random.Random(3))
    assert all(0 <= gen.next() < 37 for _ in range(1000))


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 500), st.floats(0.0, 1.2))
def test_zipf_property_in_range(n, theta):
    gen = ZipfGenerator(n, theta=theta, rng=random.Random(0))
    for _ in range(20):
        assert 0 <= gen.next() < n


# -- YCSB ------------------------------------------------------------------------------

def test_ycsb_initial_records_shape():
    wl = YcsbWorkload(YcsbConfig(record_count=100, record_size=64))
    records = wl.initial_records()
    assert len(records) == 100
    assert all(len(v) == 64 for v in records.values())


def test_ycsb_update_txn_structure():
    wl = YcsbWorkload(YcsbConfig(record_count=100, record_size=32,
                                 ops_per_txn=4))
    txn = wl.next_update()
    assert len(txn.ops) == 4
    assert all(op.op_type is OpType.WRITE for op in txn.ops)
    assert len(set(txn.keys)) == 4  # distinct keys
    assert txn.payload_size == 4 * 32


def test_ycsb_query_txn_is_read_only():
    wl = YcsbWorkload(YcsbConfig(record_count=100))
    assert wl.next_query().is_read_only


def test_ycsb_rmw_txn_is_update():
    wl = YcsbWorkload(YcsbConfig(record_count=100))
    txn = wl.next_rmw()
    assert all(op.op_type is OpType.UPDATE for op in txn.ops)


def test_ycsb_fix_total_size_divides_record():
    wl = YcsbWorkload(YcsbConfig(record_count=100, record_size=1000,
                                 ops_per_txn=10, fix_total_size=True))
    txn = wl.next_update()
    assert txn.payload_size == 10 * 100


def test_ycsb_mixed_workload_respects_read_proportion():
    wl = YcsbWorkload(YcsbConfig(record_count=100, read_proportion=1.0))
    assert all(wl.next_transaction().is_read_only for _ in range(20))


def test_ycsb_deterministic_for_seed():
    keys1 = [YcsbWorkload(YcsbConfig(record_count=50, seed=5)).next_update().keys
             for _ in range(1)]
    keys2 = [YcsbWorkload(YcsbConfig(record_count=50, seed=5)).next_update().keys
             for _ in range(1)]
    assert keys1 == keys2


# -- Smallbank -----------------------------------------------------------------------------

def test_smallbank_initial_records():
    wl = SmallbankWorkload(SmallbankConfig(num_accounts=50))
    records = wl.initial_records()
    assert len(records) == 100  # checking + savings
    assert decode_balance(records[wl.checking(0)]) == INITIAL_BALANCE


def test_balance_encoding_roundtrip():
    for amount in (0, 1, -1, 10_000, -99_999):
        assert decode_balance(encode_balance(amount)) == amount
    assert decode_balance(b"") == 0


def test_send_payment_conserves_money():
    wl = SmallbankWorkload(SmallbankConfig(num_accounts=100, theta=0.0))
    txn = wl.send_payment("c")
    src, dst = txn.ops[0].key, txn.ops[1].key
    reads = {src: encode_balance(500), dst: encode_balance(100)}
    writes = txn.logic(reads)
    if writes is not None:
        total_before = 600
        total_after = sum(decode_balance(v) for v in writes.values())
        assert total_after == total_before


def test_send_payment_insufficient_funds_aborts():
    wl = SmallbankWorkload(SmallbankConfig(num_accounts=100))
    txn = wl.send_payment("c")
    src, dst = txn.ops[0].key, txn.ops[1].key
    reads = {src: encode_balance(0), dst: encode_balance(0)}
    assert txn.logic(reads) is None


def test_transact_savings_no_negative_balance():
    wl = SmallbankWorkload(SmallbankConfig(num_accounts=10, seed=1))
    for _ in range(50):
        txn = wl.transact_savings("c")
        key = txn.ops[0].key
        writes = txn.logic({key: encode_balance(10)})
        if writes is not None:
            assert decode_balance(writes[key]) >= 0


def test_write_check_overdraft_penalty():
    wl = SmallbankWorkload(SmallbankConfig(num_accounts=10, seed=2))
    txn = wl.write_check("c")
    check_key = txn.ops[0].key
    save_key = txn.ops[1].key
    # force an overdraft: total < any positive amount
    writes = txn.logic({check_key: encode_balance(0),
                        save_key: encode_balance(0)})
    new_balance = decode_balance(writes[check_key])
    assert new_balance < 0  # amount + penalty deducted


def test_amalgamate_moves_everything():
    wl = SmallbankWorkload(SmallbankConfig(num_accounts=100, seed=3))
    txn = wl.amalgamate("c")
    sa, ca, cb = (op.key for op in txn.ops)
    writes = txn.logic({sa: encode_balance(30), ca: encode_balance(20),
                        cb: encode_balance(5)})
    assert decode_balance(writes[sa]) == 0
    assert decode_balance(writes[ca]) == 0
    assert decode_balance(writes[cb]) == 55


def test_balance_query_read_only():
    wl = SmallbankWorkload(SmallbankConfig(num_accounts=10))
    assert wl.balance("c").is_read_only


def test_smallbank_mix_produces_all_procedures():
    wl = SmallbankWorkload(SmallbankConfig(num_accounts=1000, seed=4))
    op_counts = {len(wl.next_transaction().ops) for _ in range(100)}
    assert {1, 2, 3} <= op_counts  # single, double and triple record txns


# -- driver ------------------------------------------------------------------------------------

class InstantSystem:
    """Minimal TransactionalSystem stub: commits instantly."""

    def __init__(self, env, delay=0.001, abort_every=0):
        self.env = env
        self.delay = delay
        self.abort_every = abort_every
        self.count = 0

    def submit(self, txn):
        ev = self.env.event()
        self.count += 1
        aborts = self.abort_every and self.count % self.abort_every == 0

        def go():
            txn.submitted_at = self.env.now
            yield self.env.timeout(self.delay)
            if aborts:
                from repro.txn import AbortReason
                txn.mark_aborted(AbortReason.WRITE_WRITE_CONFLICT)
            else:
                txn.mark_committed()
            ev.succeed(txn)

        self.env.process(go())
        return ev

    submit_query = submit


def test_driver_measures_throughput(env):
    system = InstantSystem(env, delay=0.01)
    wl = YcsbWorkload(YcsbConfig(record_count=100))
    result = run_closed_loop(env, system, wl.next_update,
                             DriverConfig(clients=10, warmup_txns=20,
                                          measure_txns=200))
    assert result.measured == 200
    # 10 clients, 10 ms each -> ~1000 tps
    assert result.tps == pytest.approx(1000, rel=0.15)
    assert result.mean_latency == pytest.approx(0.01, rel=0.05)


def test_driver_goodput_excludes_aborts(env):
    system = InstantSystem(env, delay=0.01, abort_every=2)
    wl = YcsbWorkload(YcsbConfig(record_count=100))
    result = run_closed_loop(env, system, wl.next_update,
                             DriverConfig(clients=10, warmup_txns=10,
                                          measure_txns=200))
    assert result.abort_rate == pytest.approx(0.5, abs=0.1)
    assert result.tps == pytest.approx(
        result.extras["completed_tps"] * (1 - result.abort_rate), rel=0.05)


def test_driver_respects_max_sim_time(env):
    system = InstantSystem(env, delay=10.0)  # slower than the wall
    wl = YcsbWorkload(YcsbConfig(record_count=100))
    result = run_closed_loop(env, system, wl.next_update,
                             DriverConfig(clients=1, warmup_txns=1,
                                          measure_txns=10_000,
                                          max_sim_time=30.0))
    assert result.measured < 10_000
