"""Feistel scramble bijectivity + alias-sampler properties."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.zipf import ZipfGenerator


@pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 63, 100,
                               1000, 2049, 4096])
def test_scramble_is_a_permutation(n):
    gen = ZipfGenerator(n, theta=0.5)
    image = sorted(gen._scramble(i) for i in range(n))
    assert image == list(range(n))


@settings(max_examples=50, deadline=None)
@given(st.integers(1, 3000))
def test_scramble_bijective_for_any_n(n):
    gen = ZipfGenerator(n, theta=0.0)
    assert len({gen._scramble(i) for i in range(n)}) == n


def test_scramble_deterministic_across_instances():
    a = ZipfGenerator(997, theta=0.9)
    b = ZipfGenerator(997, theta=0.2)  # theta must not affect the mapping
    assert [a._scramble(i) for i in range(997)] == \
        [b._scramble(i) for i in range(997)]


def test_scramble_actually_scrambles():
    gen = ZipfGenerator(1000, theta=1.0)
    assert [gen._scramble(i) for i in range(10)] != list(range(10))


def test_unscrambled_passthrough():
    gen = ZipfGenerator(50, theta=1.0, scrambled=False)
    assert [gen._scramble(i) for i in range(50)] == list(range(50))


def test_alias_tables_shared_across_instances():
    g1 = ZipfGenerator(5000, theta=0.7)
    g2 = ZipfGenerator(5000, theta=0.7)
    assert g1._prob is g2._prob  # one table, many closed-loop clients
    assert g1._alias is g2._alias


def test_alias_sampler_matches_pmf():
    n, theta = 50, 1.0
    gen = ZipfGenerator(n, theta=theta, rng=random.Random(7),
                        scrambled=False)
    draws = 200_000
    counts = [0] * n
    for _ in range(draws):
        counts[gen.next_rank()] += 1
    for rank in (0, 1, 5, 20):
        empirical = counts[rank] / draws
        assert empirical == pytest.approx(gen.probability(rank), abs=0.01)


def test_one_uniform_variate_per_draw():
    """The alias draw consumes exactly one rng.random() call, keeping
    downstream stream positions stable for other rng users."""
    class CountingRandom(random.Random):
        calls = 0

        def random(self):
            self.calls += 1
            return super().random()

    rng = CountingRandom(3)
    gen = ZipfGenerator(100, theta=0.9, rng=rng)
    for _ in range(500):
        gen.next()
    assert rng.calls == 500
