"""Driver determinism + warm-up boundary semantics."""

import pytest

from repro.bench.harness import SMOKE, run_point
from repro.sim.kernel import Environment
from repro.txn.transaction import Transaction
from repro.workloads import DriverConfig, run_closed_loop


class TickSystem:
    """Commits every submission after a fixed delay (no randomness)."""

    def __init__(self, env, delay=0.01):
        self.env = env
        self.delay = delay

    def submit(self, txn):
        ev = self.env.event()

        def go():
            txn.submitted_at = self.env.now
            yield self.env.timeout(self.delay)
            txn.mark_committed()
            ev.succeed(txn)

        self.env.process(go())
        return ev

    submit_query = submit


def _counter_workload():
    state = {"n": 0}

    def next_txn(client):
        state["n"] += 1
        return Transaction.write(f"key{state['n']}", b"v")

    return next_txn


# -- warm-up boundary -------------------------------------------------------


def test_boundary_txn_is_measured():
    """Completion number ``warmup_txns`` is the first measured txn."""
    env = Environment()
    system = TickSystem(env, delay=0.01)
    result = run_closed_loop(env, system, _counter_workload(),
                             DriverConfig(clients=1, warmup_txns=5,
                                          measure_txns=10))
    assert result.measured == 10
    # One client, 10 ms per txn: completions at 0.01*k.  Warm-up covers
    # completions 1..4, the clock starts at #4, and #5..#14 are measured.
    assert result.elapsed == pytest.approx(0.10, rel=1e-6)
    assert result.tps == pytest.approx(100.0, rel=1e-6)


def test_no_warmup_measures_from_run_start():
    env = Environment()
    system = TickSystem(env, delay=0.01)
    result = run_closed_loop(env, system, _counter_workload(),
                             DriverConfig(clients=1, warmup_txns=0,
                                          measure_txns=10))
    assert result.measured == 10
    # Window spans run start -> 10th completion: exactly 0.1s.
    assert result.elapsed == pytest.approx(0.10, rel=1e-6)
    assert result.tps == pytest.approx(100.0, rel=1e-6)


def test_warmup_one_equivalent_to_zero_warmup_window():
    env = Environment()
    system = TickSystem(env, delay=0.01)
    result = run_closed_loop(env, system, _counter_workload(),
                             DriverConfig(clients=1, warmup_txns=1,
                                          measure_txns=5))
    assert result.measured == 5
    assert result.elapsed == pytest.approx(0.05, rel=1e-6)


def test_short_smoke_run_not_skewed():
    """The boundary txn is no longer dropped: tps is exact for a
    deterministic system even at tiny measurement sizes."""
    for measure in (1, 2, 3, 10):
        env = Environment()
        system = TickSystem(env, delay=0.02)
        result = run_closed_loop(env, system, _counter_workload(),
                                 DriverConfig(clients=1, warmup_txns=3,
                                              measure_txns=measure))
        assert result.measured == measure
        assert result.tps == pytest.approx(50.0, rel=1e-6)


# -- determinism ------------------------------------------------------------


def _fingerprint(result):
    return (result.tps, result.elapsed, result.measured,
            result.stats.latency.mean, result.stats.latency.count,
            result.abort_rate, result.timeouts,
            tuple(sorted(result.phase_means().items())))


@pytest.mark.parametrize("system", ["quorum", "etcd", "fabric"])
def test_same_seed_identical_runresult(system):
    """Same seed => byte-identical RunResult through all the fast paths
    (pooled timers, immediate resume, serve fast path, alias sampler)."""
    a = run_point(system, scale=SMOKE, seed=11)
    b = run_point(system, scale=SMOKE, seed=11)
    assert _fingerprint(a) == _fingerprint(b)


def test_different_seeds_differ():
    a = run_point("quorum", scale=SMOKE, seed=1)
    b = run_point("quorum", scale=SMOKE, seed=2)
    assert _fingerprint(a) != _fingerprint(b)


def test_real_state_bookkeeping_does_not_perturb_results():
    """Maintaining the real MPT must not change simulated outcomes."""
    plain = run_point("quorum", scale=SMOKE, seed=4)
    real = run_point("quorum", scale=SMOKE, seed=4,
                     system_kwargs={"real_state": True})
    assert _fingerprint(plain) == _fingerprint(real)
    system = real.extras["system"]
    tip = system.ledger.blocks[-1]
    assert tip.header.state_root == system.state_trie.root


def test_real_state_root_matches_replayed_final_state():
    """The per-block batched commits must land on the same root as a
    fresh per-write trie over the final committed state."""
    from repro.adt.mpt import MerklePatriciaTrie

    real = run_point("quorum", scale=SMOKE, seed=4,
                     system_kwargs={"real_state": True})
    system = real.extras["system"]
    # The run may stop mid-block: fold any still-staged writes first so
    # the trie reflects everything the executor applied.
    system.state_trie.commit()
    replay = MerklePatriciaTrie()
    for key in system.state.keys():
        value, _version = system.state.get(key)
        replay.put(key.encode(), value)
    assert replay.root == system.state_trie.root
