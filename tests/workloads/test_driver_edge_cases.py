"""Driver edge cases: timeouts, infrastructure errors, phase recording."""

import pytest

from repro.txn import AbortReason, Transaction
from repro.workloads import DriverConfig, YcsbConfig, YcsbWorkload, run_closed_loop


class FlakySystem:
    """Commits normally, but some submissions hang and some fail."""

    def __init__(self, env, hang_every=0, error_every=0, delay=0.005):
        self.env = env
        self.hang_every = hang_every
        self.error_every = error_every
        self.delay = delay
        self.count = 0

    def submit(self, txn):
        ev = self.env.event()
        self.count += 1
        if self.hang_every and self.count % self.hang_every == 0:
            return ev  # never fires: client must time out
        if self.error_every and self.count % self.error_every == 0:
            ev.fail(RuntimeError("leader failover"))
            return ev

        def go():
            txn.submitted_at = self.env.now
            txn.phases["service"] = self.delay
            yield self.env.timeout(self.delay)
            txn.mark_committed()
            ev.succeed(txn)

        self.env.process(go())
        return ev

    submit_query = submit


def test_driver_survives_hanging_submissions(env):
    system = FlakySystem(env, hang_every=10)
    wl = YcsbWorkload(YcsbConfig(record_count=50))
    result = run_closed_loop(
        env, system, wl.next_update,
        DriverConfig(clients=8, warmup_txns=5, measure_txns=100,
                     txn_timeout=0.5, max_sim_time=120))
    assert result.measured == 100
    assert result.timeouts > 0


def test_driver_survives_failed_events(env):
    system = FlakySystem(env, error_every=7)
    wl = YcsbWorkload(YcsbConfig(record_count=50))
    result = run_closed_loop(
        env, system, wl.next_update,
        DriverConfig(clients=8, warmup_txns=5, measure_txns=100,
                     max_sim_time=60))
    assert result.measured == 100  # errors skipped, not counted


def test_driver_records_phases(env):
    system = FlakySystem(env)
    wl = YcsbWorkload(YcsbConfig(record_count=50))
    result = run_closed_loop(
        env, system, wl.next_update,
        DriverConfig(clients=4, warmup_txns=2, measure_txns=50))
    assert result.phase_means()["service"] == pytest.approx(0.005)


def test_driver_zero_measured_returns_zero_tps(env):
    class NeverSystem:
        def __init__(self, env):
            self.env = env

        def submit(self, txn):
            return self.env.event()  # hangs forever

    system = NeverSystem(env)
    wl = YcsbWorkload(YcsbConfig(record_count=50))
    result = run_closed_loop(
        env, system, wl.next_update,
        DriverConfig(clients=2, warmup_txns=1, measure_txns=10,
                     txn_timeout=0.1, max_sim_time=5))
    assert result.tps == 0.0
    assert result.measured == 0


def test_warmup_timeouts_kept_out_of_measured_count(env):
    # A short client timeout against a system whose every submission
    # hangs during warm-up: the timeouts observed before measurement
    # starts must land in extras["warmup_timeouts"], not in the
    # measured-window RunResult.timeouts.
    system = FlakySystem(env, hang_every=3)
    wl = YcsbWorkload(YcsbConfig(record_count=50))
    result = run_closed_loop(
        env, system, wl.next_update,
        DriverConfig(clients=8, warmup_txns=40, measure_txns=60,
                     txn_timeout=0.05, max_sim_time=120))
    assert result.measured == 60
    assert result.extras.get("warmup_timeouts", 0) > 0
    assert result.timeouts > 0
    # Every third submission hangs, so the total of both counters can't
    # exceed the hangs the system actually produced.
    hangs = system.count // 3
    assert result.timeouts + result.extras["warmup_timeouts"] <= hangs


def test_no_warmup_phase_counts_all_timeouts_as_measured(env):
    system = FlakySystem(env, hang_every=5)
    wl = YcsbWorkload(YcsbConfig(record_count=50))
    result = run_closed_loop(
        env, system, wl.next_update,
        DriverConfig(clients=4, warmup_txns=1, measure_txns=40,
                     txn_timeout=0.05, max_sim_time=60))
    assert result.timeouts > 0
    assert "warmup_timeouts" not in result.extras


def test_wall_truncation_sets_marker(env):
    system = FlakySystem(env, delay=0.05)
    wl = YcsbWorkload(YcsbConfig(record_count=50))
    result = run_closed_loop(
        env, system, wl.next_update,
        DriverConfig(clients=2, warmup_txns=1, measure_txns=100_000,
                     max_sim_time=1.0))
    assert result.extras.get("wall_hit") is True
    assert result.measured < 100_000


def test_full_run_has_no_wall_marker(env):
    system = FlakySystem(env)
    wl = YcsbWorkload(YcsbConfig(record_count=50))
    result = run_closed_loop(
        env, system, wl.next_update,
        DriverConfig(clients=4, warmup_txns=2, measure_txns=50))
    assert "wall_hit" not in result.extras
    assert result.measured == 50
