"""WAL crash-recovery edge cases: torn writes, corrupt tails, truncation.

The replay contract (Section 3.3.1's pruned-WAL recovery): records up to
the first torn or checksum-failing byte replay cleanly; everything after
is discarded, never garbled.
"""

from repro.storage.wal import WalRecord, WriteAheadLog


def _filled(n: int = 10) -> WriteAheadLog:
    wal = WriteAheadLog()
    for i in range(n):
        wal.append(WalRecord(i + 1, f"k{i}".encode(), f"v{i}".encode()))
    wal.sync()
    return wal


class TestCorruptTail:
    def test_corrupt_tail_stops_replay_at_last_good_record(self):
        wal = _filled(10)
        wal.corrupt_tail(1)               # flip the last record's tail byte
        records = list(wal.replay())
        assert len(records) == 9          # the poisoned record is dropped
        assert [r.seq for r in records] == list(range(1, 10))
        assert records[-1].value == b"v8"

    def test_deep_corruption_drops_more_records(self):
        wal = _filled(10)
        # flip enough bytes to reach into earlier records
        wal.corrupt_tail(60)
        records = list(wal.replay())
        assert len(records) < 9
        for i, rec in enumerate(records):  # the survivors are intact
            assert rec.seq == i + 1
            assert rec.value == f"v{i}".encode()

    def test_corrupt_empty_wal_is_noop(self):
        wal = WriteAheadLog()
        wal.corrupt_tail(8)
        assert list(wal.replay()) == []


class TestTornWrite:
    def test_crash_mid_record_leaves_clean_prefix(self):
        wal = _filled(5)
        # a record half-written at crash time: synced_to falls mid-record
        wal.append(WalRecord(6, b"k5", b"v5"))
        wal.synced_to = wal.size_bytes() - 3   # torn: last 3 bytes unsynced
        wal.crash()
        records = list(wal.replay())
        assert [r.seq for r in records] == [1, 2, 3, 4, 5]

    def test_torn_length_prefix(self):
        wal = _filled(3)
        # only 4 bytes of the next record's 8-byte header survive
        wal._buffer.extend((999).to_bytes(4, "big"))
        records = list(wal.replay())
        assert [r.seq for r in records] == [1, 2, 3]


class TestTruncateAfterReplay:
    def test_truncate_resets_log_and_replay_is_empty(self):
        wal = _filled(8)
        assert len(list(wal.replay())) == 8
        wal.truncate()
        assert wal.size_bytes() == 0
        assert wal.synced_to == 0
        assert list(wal.replay()) == []

    def test_appends_after_truncate_replay_alone(self):
        wal = _filled(4)
        list(wal.replay())
        wal.truncate()                    # checkpoint after recovery
        wal.append(WalRecord(5, b"k", b"post"))
        wal.sync()
        records = list(wal.replay())
        assert [r.seq for r in records] == [5]
        assert records[0].value == b"post"
