"""Additional storage-engine edge cases and stress scenarios."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import BPlusTree, LSMTree, SkipList


def test_lsm_heavy_overwrite_compacts_space():
    """Overwriting the same small key set must not grow storage without
    bound: compaction reclaims superseded versions."""
    lsm = LSMTree(memtable_limit=16, max_l0_tables=2)
    for round_ in range(40):
        for i in range(16):
            lsm.put(f"k{i:02d}".encode(), f"round{round_:03d}".encode())
    lsm.flush()
    # worst case without compaction would be 640 entries; with leveled
    # compaction the live table count stays small
    total_entries = sum(len(t) for tables in lsm.levels for t in tables)
    assert total_entries < 200
    assert len(lsm) == 16


def test_lsm_scan_excludes_deleted_range():
    lsm = LSMTree(memtable_limit=8)
    for i in range(30):
        lsm.put(f"{i:02d}".encode(), b"v")
    for i in range(10, 20):
        lsm.delete(f"{i:02d}".encode())
    keys = [k for k, _ in lsm.scan(b"05", b"25")]
    assert keys == [f"{i:02d}".encode() for i in
                    list(range(5, 10)) + list(range(20, 25))]


def test_lsm_get_after_deep_compaction():
    lsm = LSMTree(memtable_limit=4, max_l0_tables=1, level_factor=2)
    for i in range(256):
        lsm.put(f"key{i:04d}".encode(), f"v{i}".encode())
    assert len(lsm.levels) > 2  # several levels created
    assert lsm.get(b"key0000") == b"v0"
    assert lsm.get(b"key0255") == b"v255"


def test_btree_reverse_and_random_insert_equivalent():
    forward = BPlusTree(order=6)
    backward = BPlusTree(order=6)
    shuffled = BPlusTree(order=6)
    keys = list(range(300))
    for k in keys:
        forward.put(k, k)
    for k in reversed(keys):
        backward.put(k, k)
    for k in random.Random(5).sample(keys, len(keys)):
        shuffled.put(k, k)
    assert list(forward.items()) == list(backward.items()) \
        == list(shuffled.items())


def test_btree_range_empty_and_boundary():
    bt = BPlusTree(order=4)
    for i in range(0, 100, 2):  # even keys only
        bt.put(i, i)
    assert list(bt.range(200, 300)) == []
    assert [k for k, _ in bt.range(10, 11)] == [10]
    assert [k for k, _ in bt.range(9, 10)] == []


def test_skiplist_duplicate_heavy_workload():
    sl = SkipList(seed=3)
    for i in range(1000):
        sl.put(b"same", i)
    assert len(sl) == 1
    assert sl.get(b"same") == 999


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(0, 50), min_size=0, max_size=100))
def test_skiplist_range_matches_sorted_filter(keys):
    sl = SkipList()
    for k in keys:
        sl.put(k, k)
    got = [k for k, _ in sl.range(10, 30)]
    assert got == sorted({k for k in keys if 10 <= k < 30})


@settings(max_examples=20, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 30),
                          st.booleans()), min_size=0, max_size=80))
def test_btree_delete_property(ops):
    bt = BPlusTree(order=4)
    model = {}
    for key, is_put in ops:
        if is_put:
            bt.put(key, key * 2)
            model[key] = key * 2
        else:
            assert bt.delete(key) == (key in model)
            model.pop(key, None)
    assert len(bt) == len(model)
    assert list(bt.items()) == sorted(model.items())
