"""Tests for the storage engines: skip list, B+ tree, SSTable, LSM, WAL."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import (BPlusTree, BloomFilter, LSMTree, SkipList,
                           SSTable, TOMBSTONE, WalRecord, WriteAheadLog)


# -- skip list ---------------------------------------------------------------

def test_skiplist_put_get_overwrite():
    sl = SkipList()
    sl.put(b"b", 1)
    sl.put(b"a", 2)
    sl.put(b"b", 3)
    assert sl.get(b"b") == 3
    assert sl.get(b"a") == 2
    assert sl.get(b"zz") is None
    assert len(sl) == 2


def test_skiplist_items_sorted():
    sl = SkipList()
    keys = [f"k{i:03d}".encode() for i in range(100)]
    for k in random.Random(3).sample(keys, len(keys)):
        sl.put(k, k)
    assert [k for k, _ in sl.items()] == sorted(keys)


def test_skiplist_range():
    sl = SkipList()
    for i in range(50):
        sl.put(f"{i:02d}".encode(), i)
    got = [v for _, v in sl.range(b"10", b"20")]
    assert got == list(range(10, 20))


def test_skiplist_contains():
    sl = SkipList()
    sl.put(b"x", None)  # None value must still count as present
    assert b"x" in sl
    assert b"y" not in sl


# -- B+ tree -------------------------------------------------------------------

def test_btree_requires_min_order():
    with pytest.raises(ValueError):
        BPlusTree(order=2)


def test_btree_put_get_delete():
    bt = BPlusTree(order=4)
    for i in range(200):
        bt.put(i, i * 2)
    assert len(bt) == 200
    assert bt.get(123) == 246
    assert bt.delete(123)
    assert not bt.delete(123)
    assert bt.get(123) is None
    assert len(bt) == 199


def test_btree_overwrite_does_not_grow():
    bt = BPlusTree(order=4)
    bt.put("k", 1)
    bt.put("k", 2)
    assert bt.get("k") == 2
    assert len(bt) == 1


def test_btree_items_sorted_and_range():
    bt = BPlusTree(order=5)
    keys = list(range(500))
    for k in random.Random(1).sample(keys, len(keys)):
        bt.put(k, str(k))
    assert [k for k, _ in bt.items()] == keys
    assert [k for k, _ in bt.range(100, 110)] == list(range(100, 110))


def test_btree_depth_grows_logarithmically():
    bt = BPlusTree(order=8)
    for i in range(4000):
        bt.put(i, i)
    assert 3 <= bt.depth() <= 6
    assert bt.node_count() > 4000 / 8


@settings(max_examples=30, deadline=None)
@given(st.dictionaries(st.integers(-1000, 1000), st.integers(),
                       min_size=0, max_size=120))
def test_btree_matches_dict_model(model):
    bt = BPlusTree(order=4)
    for k, v in model.items():
        bt.put(k, v)
    for k, v in model.items():
        assert bt.get(k) == v
    assert len(bt) == len(model)
    assert [k for k, _ in bt.items()] == sorted(model)


# -- Bloom filter & SSTable ------------------------------------------------------

def test_bloom_no_false_negatives():
    bloom = BloomFilter(capacity=100)
    keys = [f"k{i}".encode() for i in range(100)]
    for k in keys:
        bloom.add(k)
    assert all(bloom.may_contain(k) for k in keys)


def test_bloom_some_true_negatives():
    bloom = BloomFilter(capacity=100)
    for i in range(100):
        bloom.add(f"k{i}".encode())
    misses = sum(not bloom.may_contain(f"absent{i}".encode())
                 for i in range(1000))
    assert misses > 800  # ~1% false-positive target at 10 bits/key


def test_sstable_requires_sorted_input():
    with pytest.raises(ValueError):
        SSTable([(b"b", b"1"), (b"a", b"2")])
    with pytest.raises(ValueError):
        SSTable([(b"a", b"1"), (b"a", b"2")])  # duplicates forbidden


def test_sstable_get_and_bounds():
    entries = [(f"k{i:03d}".encode(), f"v{i}".encode()) for i in range(100)]
    table = SSTable(entries)
    assert table.get(b"k050") == b"v50"
    assert table.get(b"k999") is None
    assert table.get(b"a") is None  # below min: no bloom probe needed
    assert table.min_key == b"k000" and table.max_key == b"k099"


def test_sstable_overlaps():
    t1 = SSTable([(b"a", b"1"), (b"m", b"2")])
    t2 = SSTable([(b"n", b"1"), (b"z", b"2")])
    t3 = SSTable([(b"l", b"1"), (b"p", b"2")])
    assert not t1.overlaps(t2)
    assert t1.overlaps(t3) and t3.overlaps(t2)


# -- WAL ----------------------------------------------------------------------------

def test_wal_replay_roundtrip():
    wal = WriteAheadLog()
    for i in range(10):
        wal.append(WalRecord(i, f"k{i}".encode(), f"v{i}".encode()))
    wal.sync()
    records = list(wal.replay())
    assert len(records) == 10
    assert records[3].key == b"k3" and records[3].value == b"v3"


def test_wal_crash_discards_unsynced():
    wal = WriteAheadLog()
    wal.append(WalRecord(1, b"a", b"1"))
    wal.sync()
    wal.append(WalRecord(2, b"b", b"2"))  # not synced
    wal.crash()
    assert [r.seq for r in wal.replay()] == [1]


def test_wal_corrupt_tail_stops_replay_cleanly():
    wal = WriteAheadLog()
    for i in range(5):
        wal.append(WalRecord(i, b"k", b"v"))
    wal.corrupt_tail(2)
    assert len(list(wal.replay())) == 4


def test_wal_truncate():
    wal = WriteAheadLog()
    wal.append(WalRecord(1, b"k", b"v"))
    wal.truncate()
    assert list(wal.replay()) == []
    assert wal.size_bytes() == 0


# -- LSM tree --------------------------------------------------------------------------

def test_lsm_basic_roundtrip_with_flushes():
    lsm = LSMTree(memtable_limit=8)
    for i in range(100):
        lsm.put(f"k{i:03d}".encode(), f"v{i}".encode())
    assert lsm.table_count() >= 1  # flushed at least once
    for i in range(100):
        assert lsm.get(f"k{i:03d}".encode()) == f"v{i}".encode()


def test_lsm_newest_version_wins_across_levels():
    lsm = LSMTree(memtable_limit=4)
    for round_ in range(5):
        for i in range(8):
            lsm.put(b"hot", f"round{round_}".encode())
            lsm.put(f"filler{round_}:{i}".encode(), b"x")
    assert lsm.get(b"hot") == b"round4"


def test_lsm_delete_and_tombstone():
    lsm = LSMTree(memtable_limit=4)
    lsm.put(b"k", b"v")
    lsm.flush()
    lsm.delete(b"k")
    assert lsm.get(b"k") is None
    assert b"k" not in lsm
    lsm.flush()
    assert lsm.get(b"k") is None


def test_lsm_tombstone_value_collision_rejected():
    lsm = LSMTree()
    with pytest.raises(ValueError):
        lsm.put(b"k", TOMBSTONE)


def test_lsm_scan_merges_levels():
    lsm = LSMTree(memtable_limit=4)
    model = {}
    rng = random.Random(9)
    for i in range(200):
        k = f"k{rng.randrange(50):02d}".encode()
        v = f"v{i}".encode()
        lsm.put(k, v)
        model[k] = v
    expected = sorted((k, v) for k, v in model.items() if b"k10" <= k < b"k30")
    assert list(lsm.scan(b"k10", b"k30")) == expected


def test_lsm_recover_from_wal():
    lsm = LSMTree(memtable_limit=1000)  # everything stays in the memtable
    for i in range(20):
        lsm.put(f"k{i}".encode(), f"v{i}".encode())
    recovered = lsm.recover()
    assert recovered == 20
    assert lsm.get(b"k7") == b"v7"


def test_lsm_write_amplification_positive_after_compaction():
    lsm = LSMTree(memtable_limit=8, max_l0_tables=2)
    for i in range(400):
        lsm.put(f"k{i % 40:02d}".encode(), bytes(20))
    assert lsm.write_amplification() > 1.0
    assert lsm.bytes_compacted > 0


def test_lsm_total_bytes_accounting():
    lsm = LSMTree(memtable_limit=16)
    for i in range(64):
        lsm.put(f"key{i:04d}".encode(), b"x" * 100)
    assert lsm.total_bytes() > 64 * 100


@settings(max_examples=20, deadline=None)
@given(st.lists(
    st.tuples(st.sampled_from([b"a", b"b", b"c", b"d", b"e", b"f"]),
              st.one_of(st.binary(min_size=1, max_size=8), st.none())),
    min_size=0, max_size=200))
def test_lsm_matches_dict_model(ops):
    """Differential test: LSM == dict under interleaved put/delete."""
    lsm = LSMTree(memtable_limit=4, max_l0_tables=2)
    model = {}
    for key, value in ops:
        if value is None:
            lsm.delete(key)
            model.pop(key, None)
        else:
            lsm.put(key, value)
            model[key] = value
    for key in (b"a", b"b", b"c", b"d", b"e", b"f"):
        assert lsm.get(key) == model.get(key)
    assert len(lsm) == len(model)
