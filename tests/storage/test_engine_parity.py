"""Differential suite for the pluggable storage-engine layer.

All six Table 2 engines must agree on get/put/apply_write_set semantics
over a seeded op stream (the swap-a-layer-under-a-transaction-flow gate:
an engine that returns different values would silently break the
serializability/equivalence checks above it), and the authenticated
engines' roots must be deterministic across independent runs.
"""

from __future__ import annotations

import random

import pytest

from repro.core.taxonomy import IndexKind
from repro.crypto.hashing import NULL_HASH
from repro.storage.engine import (CommitResult, ENGINES, engine_for,
                                  parse_index_kind)
from repro.txn.state import VersionedStore

ALL_KINDS = list(IndexKind)


def _seeded_ops(seed: int, n: int = 600, keys: int = 120):
    """A deterministic stream of (op, key, value) covering overwrites."""
    rng = random.Random(seed)
    ops = []
    for i in range(n):
        key = f"user{rng.randrange(keys):06d}"
        if rng.random() < 0.25:
            ops.append(("get", key, None))
        elif rng.random() < 0.3:
            ops.append(("apply", key, b"ws-%d" % i))
        else:
            ops.append(("put", key, b"v-%d" % i))
        if rng.random() < 0.05:
            ops.append(("commit", None, None))
    return ops


def _run_stream(engine, ops):
    """Apply the op stream; return (observed gets, per-commit results)."""
    observed = []
    commits = []
    version = 0
    for op, key, value in ops:
        if op == "put":
            engine.put(key, value)
        elif op == "apply":
            engine.apply_write_set({key: value, key + ":sib": value})
        elif op == "get":
            observed.append((key, engine.get(key)))
        else:
            version += 1
            commits.append(engine.commit(version))
    commits.append(engine.commit(version + 1))
    return observed, commits


def test_registry_covers_every_index_kind():
    assert set(ENGINES) == set(IndexKind)
    for kind in ALL_KINDS:
        assert engine_for(kind).kind is kind
    # the core-level alias (lazy import, so repro.core users never touch
    # repro.storage directly) resolves to the same registry
    from repro.core.builder import engine_for_index
    assert engine_for_index("lsm+mpt").kind is IndexKind.LSM_MPT


@pytest.mark.parametrize("kind", ALL_KINDS, ids=lambda k: k.name.lower())
def test_engine_agrees_with_dict_model(kind):
    """Every engine must track a plain dict over the seeded op stream."""
    engine = engine_for(kind)
    model: dict[str, bytes] = {}
    for op, key, value in _seeded_ops(seed=7):
        if op == "put":
            engine.put(key, value)
            model[key] = value
        elif op == "apply":
            ws = {key: value, key + ":sib": value}
            engine.apply_write_set(ws)
            model.update(ws)
        elif op == "get":
            assert engine.get(key) == model.get(key), (kind, key)
        else:
            engine.commit(0)
    engine.commit(1)
    for key, value in model.items():
        assert engine.get(key) == value, (kind, key)
    assert engine.get("user-never-written") is None


def test_all_engines_agree_pairwise():
    """The observed read results must be identical across all six."""
    ops = _seeded_ops(seed=23)
    results = {kind: _run_stream(engine_for(kind), ops)[0]
               for kind in ALL_KINDS}
    reference = results[IndexKind.LSM]
    for kind, observed in results.items():
        assert observed == reference, f"{kind} diverged from LSM"


@pytest.mark.parametrize("kind", ALL_KINDS, ids=lambda k: k.name.lower())
def test_roots_deterministic_across_runs(kind):
    """Two independent engines fed the same stream land on the same root
    (and the same measured deltas) — the fingerprint-stability property
    the seeded RunResult gates rely on."""
    ops = _seeded_ops(seed=42)

    def totals(engine):
        """(final root, total hashes, total node_ops) over the stream."""
        _observed, commits = _run_stream(engine, ops)
        assert all(isinstance(c, CommitResult) for c in commits)
        return (commits[-1].root,
                sum(c.hashes_computed for c in commits),
                sum(c.node_ops for c in commits))

    (root_a, hashes_a, ops_a) = totals(engine_for(kind))
    (root_b, hashes_b, ops_b) = totals(engine_for(kind))
    assert root_a == root_b
    assert (hashes_a, ops_a) == (hashes_b, ops_b)
    assert ops_a > 0                       # the stream did structural work
    if engine_for(kind).authenticated:
        assert hashes_a > 0
        # a different stream must produce a different root
        other = engine_for(kind)
        _observed, commits = _run_stream(other, _seeded_ops(seed=43))
        assert commits[-1].root != root_a
    else:
        assert root_a == NULL_HASH
        assert hashes_a == 0


def test_authenticated_flags_match_taxonomy():
    """The engine's authenticated bit mirrors Table 2's red/blue marking."""
    for kind in ALL_KINDS:
        engine = engine_for(kind)
        expected = kind in (IndexKind.LSM_MPT, IndexKind.LSM_MBT,
                            IndexKind.BTREE_MERKLE)
        assert engine.authenticated is expected


def test_unknown_extras_key_rejected():
    """A typo'd extras key must raise, not silently run the default."""
    from repro.storage.engine import engine_from_config
    with pytest.raises(ValueError, match="indx"):
        engine_from_config({"indx": "lsm+mpt"})
    assert engine_from_config({"index": "lsm"}).kind is IndexKind.LSM
    assert engine_from_config({}) is None


def test_parse_index_kind_aliases_and_errors():
    assert parse_index_kind("lsm+mpt") is IndexKind.LSM_MPT
    assert parse_index_kind("b-tree") is IndexKind.BTREE
    assert parse_index_kind("lsm tree") is IndexKind.LSM
    assert parse_index_kind(IndexKind.SKIP_LIST) is IndexKind.SKIP_LIST
    with pytest.raises(ValueError):
        parse_index_kind("quantum-index")


def test_versioned_store_facade_mirrors_engine():
    """The facade keeps versions itself and mirrors values byte-for-byte."""
    engine = engine_for(IndexKind.LSM_MPT)
    store = VersionedStore(engine=engine)
    store.put("a", b"1", 1)
    store.apply_write_set({"b": b"2", "c": b"3"}, 2)
    assert store.get("a") == (b"1", 1)
    assert store.version("c") == 2
    result = store.commit(2)
    assert result.root != NULL_HASH
    for key in store.keys():
        assert engine.get(key) == store.get(key)[0]
    # engine-less store still commits as a no-op
    assert VersionedStore().commit(1) is None


def test_wal_journals_and_checkpoints():
    """extras["wal"]-style engines journal every write and group-commit."""
    engine = engine_for(IndexKind.BTREE, wal=True)
    for i in range(50):
        engine.put(f"k{i}", b"v%d" % i)
    assert engine.wal.appended == 50
    assert engine.wal.synced_to == 0          # nothing durable yet
    engine.commit(1)
    assert engine.wal.synced_to == engine.wal.size_bytes()  # group commit
    replayed = list(engine.wal.replay())
    assert len(replayed) == 50
    assert replayed[0].key == b"k0"
