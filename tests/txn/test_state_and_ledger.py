"""Tests for versioned state and the hash-chained ledger."""

import pytest

from repro.txn import Ledger, Transaction, VersionedStore, envelope_size
from repro.txn.ledger import Block, BlockHeader
from repro.crypto.hashing import NULL_HASH


# -- VersionedStore ---------------------------------------------------------

def test_versioned_store_roundtrip():
    store = VersionedStore()
    store.put("a", b"1", 5)
    assert store.get("a") == (b"1", 5)
    assert store.version("a") == 5


def test_versioned_store_missing_key():
    store = VersionedStore()
    assert store.get("ghost") == (None, 0)
    assert store.version("ghost") == 0
    assert "ghost" not in store


def test_apply_write_set_stamps_version():
    store = VersionedStore()
    store.apply_write_set({"x": b"1", "y": b"2"}, version=7)
    assert store.get("x") == (b"1", 7)
    assert store.get("y") == (b"2", 7)
    assert len(store) == 2


def test_snapshot_is_a_copy():
    store = VersionedStore()
    store.put("a", b"1", 1)
    snap = store.snapshot()
    store.put("a", b"2", 2)
    assert snap["a"] == (b"1", 1)


def test_data_bytes_accounting():
    store = VersionedStore()
    store.put("a", b"12345", 1)
    store.put("b", b"123", 1)
    assert store.data_bytes() == 8


# -- envelope sizing (Fig. 12) ------------------------------------------------

def test_envelope_size_grows_three_records_per_txn():
    small = envelope_size(Transaction.write("k", b"x" * 10), endorsements=3)
    large = envelope_size(Transaction.write("k", b"x" * 5000), endorsements=3)
    assert large - small == 3 * (5000 - 10)


def test_envelope_size_grows_with_endorsements():
    txn = Transaction.write("k", b"x" * 100)
    e3 = envelope_size(txn, endorsements=3)
    e5 = envelope_size(txn, endorsements=5)
    assert e5 - e3 == 2 * (1500 + 71)


def test_envelope_size_matches_fig12_magnitude():
    """At 3 endorsements and 10 B records the paper reports ~6.7 kB/txn."""
    txn = Transaction.write("k", b"x" * 10)
    size = envelope_size(txn, endorsements=3)
    assert 5000 < size < 9000


# -- ledger -------------------------------------------------------------------

def _chain_with(n_blocks=3, txns_per_block=4):
    ledger = Ledger()
    for b in range(n_blocks):
        txns = [Transaction.write(f"k{b}:{i}", b"v") for i in range(txns_per_block)]
        ledger.append_block(txns, timestamp=float(b))
    return ledger


def test_ledger_heights_and_linkage():
    ledger = _chain_with(3)
    assert ledger.height == 3
    assert ledger.blocks[1].header.prev_hash == ledger.blocks[0].digest()
    assert ledger.blocks[0].header.prev_hash == NULL_HASH


def test_ledger_verify_ok():
    assert _chain_with(5).verify()


def test_ledger_detects_txn_tampering():
    ledger = _chain_with(3)
    ledger.blocks[1].txns.append(Transaction.write("evil", b"x"))
    assert not ledger.verify()


def test_ledger_detects_header_tampering():
    ledger = _chain_with(3)
    original = ledger.blocks[1]
    ledger.blocks[1] = Block(
        header=BlockHeader(number=1,
                           prev_hash=b"\x01" * 32,
                           txns_root=original.header.txns_root,
                           timestamp=original.header.timestamp),
        txns=original.txns)
    assert not ledger.verify()


def test_ledger_detects_block_reordering():
    ledger = _chain_with(4)
    ledger.blocks[1], ledger.blocks[2] = ledger.blocks[2], ledger.blocks[1]
    assert not ledger.verify()


def test_merkle_root_changes_with_txns():
    t1 = [Transaction.write("a", b"1")]
    t2 = [Transaction.write("b", b"2")]
    assert Block.txns_merkle_root(t1) != Block.txns_merkle_root(t2)
    assert Block.txns_merkle_root([]) == NULL_HASH


def test_ledger_total_bytes_and_txns():
    ledger = _chain_with(2, txns_per_block=3)
    assert ledger.total_txns() == 6
    assert ledger.total_bytes() > 6 * 1000  # envelopes dominate


def test_empty_ledger_tip():
    assert Ledger().tip_hash == NULL_HASH
    assert Ledger().verify()
