"""Tests for the transaction model."""

from repro.txn import AbortReason, Op, OpType, Transaction, TxnStatus


def test_txn_ids_are_unique_and_increasing():
    a, b = Transaction.write("k", b"v"), Transaction.write("k", b"v")
    assert b.txn_id > a.txn_id


def test_read_write_key_classification():
    txn = Transaction(ops=[
        Op(OpType.READ, "r"),
        Op(OpType.WRITE, "w", b"1"),
        Op(OpType.UPDATE, "u", b"2"),
    ])
    assert txn.read_keys == ["r", "u"]
    assert txn.write_keys == ["w", "u"]
    assert txn.keys == ["r", "w", "u"]


def test_is_read_only():
    assert Transaction.read("k").is_read_only
    assert not Transaction.update("k", b"v").is_read_only
    assert not Transaction.write("k", b"v").is_read_only


def test_payload_size_counts_written_bytes_only():
    txn = Transaction(ops=[Op(OpType.READ, "r"),
                           Op(OpType.WRITE, "w", b"12345")])
    assert txn.payload_size == 5


def test_status_transitions():
    txn = Transaction.write("k", b"v")
    assert txn.status is TxnStatus.PENDING
    txn.mark_committed()
    assert txn.status is TxnStatus.COMMITTED
    txn2 = Transaction.write("k", b"v")
    txn2.mark_aborted(AbortReason.WRITE_WRITE_CONFLICT)
    assert txn2.status is TxnStatus.ABORTED
    assert txn2.abort_reason is AbortReason.WRITE_WRITE_CONFLICT


def test_convenience_constructors():
    w = Transaction.write("k", b"v", client="c9")
    assert w.ops[0].op_type is OpType.WRITE and w.client == "c9"
    r = Transaction.read("k")
    assert r.ops[0].op_type is OpType.READ
    u = Transaction.update("k", b"v")
    assert u.ops[0].op_type is OpType.UPDATE
    assert u.ops[0].is_write
