"""Headless smoke runs of the examples (the builder-API drift gate).

The examples are the public face of the builder API; running them at
reduced scale in the tier-1 suite (and the CI examples job) means a
builder/signature change that would break them cannot land silently.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
EXAMPLES = REPO / "examples"


def _run_example(name: str, timeout: float = 120.0):
    env = dict(os.environ)
    env["REPRO_EXAMPLES_SCALE"] = "smoke"
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout, env=env,
        cwd=str(REPO))


@pytest.mark.parametrize("name,expect", [
    ("quickstart.py", "YCSB uniform update"),
    ("design_space_explorer.py", "Design-space sweep"),
])
def test_example_runs_headless(name, expect):
    proc = _run_example(name)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert expect in proc.stdout
    # every measured line must carry a real number, not a crash mid-sweep
    assert "Traceback" not in proc.stderr
